"""The KV cluster: a DHT of storage nodes with namespaced key spaces.

This is the storage layer of Fig. 1: keys are placed on nodes by
consistent hashing; clients issue ``get``/``put``/``delete`` and drive
scans with ``next()``-style iteration. Every operation is counted on the
owning node so the evaluation can report #get, #data and bytes moved.

Namespaces isolate key spaces of different relations / KV instances: the
stored key is ``encode_value(namespace) + key_bytes``.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.kv.codec import encode_value
from repro.kv.hashring import HashRing
from repro.kv.node import NodeCounters, StorageNode


class KVCluster:
    """A cluster of :class:`StorageNode` behind a consistent-hash ring."""

    def __init__(
        self,
        num_nodes: int = 4,
        ring_replicas: int = 64,
        engine: str = "mem",
    ) -> None:
        if num_nodes <= 0:
            raise ValueError("num_nodes must be positive")
        self.engine = engine
        self.nodes: Dict[int, StorageNode] = {}
        self.ring = HashRing(replicas=ring_replicas)
        #: client-side block caches subscribed to write invalidations
        self._caches: List = []
        for node_id in range(num_nodes):
            self._add_node(node_id)

    # -- cache invalidation bus -------------------------------------------

    def register_cache(self, cache) -> None:
        """Subscribe a client-side block cache to write invalidations.

        Every write that flows through the cluster (``put``,
        ``multi_put``, ``delete``, ``drop_namespace``) invalidates the
        touched ``(namespace, key_bytes)`` in every registered cache, so
        read-through caches can never serve stale payloads. Idempotent.
        """
        if cache is not None and all(c is not cache for c in self._caches):
            self._caches.append(cache)

    def _invalidate(self, namespace: str, key_bytes: bytes) -> None:
        for cache in self._caches:
            cache.invalidate(namespace, key_bytes)

    # -- topology --------------------------------------------------------

    def _add_node(self, node_id: int) -> StorageNode:
        node = StorageNode(node_id, engine=self.engine)
        self.nodes[node_id] = node
        self.ring.add_node(node_id)
        return node

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    def add_node(self) -> StorageNode:
        """Add a storage node and rebalance keys it now owns.

        Models horizontal scale-out (Exp-4). Only keys whose ring owner
        changed are moved, the consistent-hashing guarantee.
        """
        new_id = max(self.nodes) + 1
        node = self._add_node(new_id)
        for old_node in list(self.nodes.values()):
            if old_node.node_id == new_id:
                continue
            moved: List[bytes] = []
            for key, value in old_node.store.scan():
                if self.ring.node_for(key) == new_id:
                    node.store.put(key, value)
                    moved.append(key)
            for key in moved:
                old_node.store.delete(key)
        return node

    def _owner(self, full_key: bytes) -> StorageNode:
        return self.nodes[self.ring.node_for(full_key)]

    @staticmethod
    def full_key(namespace: str, key_bytes: bytes) -> bytes:
        return encode_value(namespace) + key_bytes

    # -- KV API ------------------------------------------------------------

    def get(self, namespace: str, key_bytes: bytes,
            n_values: int = 1) -> Optional[bytes]:
        """Point get; counts one get on the owning node."""
        full = self.full_key(namespace, key_bytes)
        return self._owner(full).get(full, n_values=n_values)

    def multi_get(
        self,
        namespace: str,
        keys: Sequence[bytes],
        n_values_each: int = 1,
    ) -> List[Optional[bytes]]:
        """Batched get: ONE round trip per owning node for the whole batch.

        Keys are grouped by their hash-ring owner; each node serves its
        group with a single :meth:`StorageNode.multi_get`. Duplicate keys
        within the batch are fetched once per node and fanned back out.
        Results are positional — ``out[i]`` answers ``keys[i]`` — so
        callers keep their ordering guarantees regardless of placement.
        """
        results: List[Optional[bytes]] = [None] * len(keys)
        by_node: Dict[int, List[bytes]] = {}
        positions: Dict[Tuple[int, bytes], List[int]] = {}
        for index, key_bytes in enumerate(keys):
            full = self.full_key(namespace, key_bytes)
            node_id = self.ring.node_for(full)
            slot = positions.setdefault((node_id, full), [])
            if not slot:
                by_node.setdefault(node_id, []).append(full)
            slot.append(index)
        for node_id, node_keys in by_node.items():
            values = self.nodes[node_id].multi_get(
                node_keys, n_values_each=n_values_each
            )
            for full, value in zip(node_keys, values):
                for index in positions[(node_id, full)]:
                    results[index] = value
        return results

    def put(self, namespace: str, key_bytes: bytes, value: bytes,
            n_values: int = 1) -> None:
        self._invalidate(namespace, key_bytes)
        full = self.full_key(namespace, key_bytes)
        self._owner(full).put(full, value, n_values=n_values)

    def multi_put(
        self,
        namespace: str,
        items: Sequence[Tuple[bytes, bytes]],
        n_values_each: int = 1,
    ) -> None:
        """Batched put: ONE round trip per owning node. Later duplicates win
        (items are applied in order within each node's batch)."""
        by_node: Dict[int, List[Tuple[bytes, bytes]]] = {}
        for key_bytes, value in items:
            self._invalidate(namespace, key_bytes)
            full = self.full_key(namespace, key_bytes)
            by_node.setdefault(self.ring.node_for(full), []).append(
                (full, value)
            )
        for node_id, node_items in by_node.items():
            self.nodes[node_id].multi_put(
                node_items, n_values_each=n_values_each
            )

    def delete(self, namespace: str, key_bytes: bytes) -> bool:
        self._invalidate(namespace, key_bytes)
        full = self.full_key(namespace, key_bytes)
        return self._owner(full).delete(full)

    def peek(self, namespace: str, key_bytes: bytes) -> Optional[bytes]:
        """Uncounted read (maintenance bookkeeping)."""
        full = self.full_key(namespace, key_bytes)
        return self._owner(full).peek(full)

    def scan(
        self,
        namespace: str,
        count_as_gets: bool = True,
        values_of: Optional[Callable[[bytes, bytes], int]] = None,
    ) -> Iterator[Tuple[bytes, bytes]]:
        """Scan all pairs of a namespace across all nodes.

        This is the §3 scan: iterate keys via ``next()`` and fetch each
        value with ``get``; with ``count_as_gets`` every pair visited is
        tallied as one get on its node, which is exactly the "blind scan"
        cost TaaV suffers. Yields (stripped key bytes, value bytes).

        ``values_of`` maps a (stripped key, value) pair to its logical
        value count, so decode-aware callers charge ``values_read``
        exactly like :meth:`StorageNode.get` would (a TaaV pair is
        ``arity`` values, a stats sidecar ``4 × attrs``); without it
        every pair counts as one value — never zero, which silently
        undercounted the blind-scan #data.
        """
        prefix = encode_value(namespace)
        plen = len(prefix)
        for node in self.nodes.values():
            for key, value in node.store.scan(prefix):
                stripped = key[plen:]
                if count_as_gets:
                    # the blind scan issues one full get (and thus one
                    # round trip) per pair — the cost BaaV removes
                    counters = node.counters
                    counters.gets += 1
                    counters.round_trips += 1
                    counters.hits += 1
                    counters.bytes_out += len(value)
                    counters.values_read += (
                        values_of(stripped, value) if values_of else 1
                    )
                yield stripped, value

    def namespace_keys(self, namespace: str) -> List[bytes]:
        """All (stripped) key bytes of a namespace, uncounted."""
        prefix = encode_value(namespace)
        plen = len(prefix)
        keys: List[bytes] = []
        for node in self.nodes.values():
            for key, _ in node.store.scan(prefix):
                keys.append(key[plen:])
        return keys

    def drop_namespace(self, namespace: str) -> int:
        """Delete every pair in ``namespace``; return how many."""
        for cache in self._caches:
            cache.invalidate_namespace(namespace)
        prefix = encode_value(namespace)
        dropped = 0
        for node in self.nodes.values():
            doomed = [key for key, _ in node.store.scan(prefix)]
            for key in doomed:
                node.store.delete(key)
            dropped += len(doomed)
        return dropped

    # -- counters ----------------------------------------------------------

    def reset_counters(self) -> None:
        for node in self.nodes.values():
            node.counters.reset()

    def total_counters(self) -> NodeCounters:
        total = NodeCounters()
        for node in self.nodes.values():
            total.add(node.counters)
        return total

    def counters_per_node(self) -> Dict[int, NodeCounters]:
        return {node_id: node.counters for node_id, node in self.nodes.items()}

    def max_node_counters(self) -> NodeCounters:
        """Counters of the busiest node (for max-per-stage cost models)."""
        busiest = NodeCounters()
        best = -1.0
        for node in self.nodes.values():
            weight = node.counters.gets + node.counters.values_read
            if weight > best:
                best = weight
                busiest = node.counters
        return busiest

    def size_bytes(self) -> int:
        return sum(node.store.size_bytes() for node in self.nodes.values())

    def __repr__(self) -> str:
        return f"KVCluster(nodes={self.num_nodes})"
