"""The KV cluster: a replicated DHT of storage nodes with namespaces.

This is the storage layer of Fig. 1: keys are placed on nodes by
consistent hashing; clients issue ``get``/``put``/``delete`` and drive
scans with ``next()``-style iteration. Every operation is counted on the
serving node so the evaluation can report #get, #data and bytes moved.

Namespaces isolate key spaces of different relations / KV instances: the
stored key is ``encode_value(namespace) + key_bytes``.

Replication (PR 3)
------------------

With ``replication_factor=R`` every key lives on the first R distinct
**live** nodes of its ring walk (its *preference list*, Dynamo-style):

* **writes** fan out to all R live owners (``multi_put`` batches once
  per owning node), so write counters honestly show the R× cost;
* **reads** are served by the least-loaded live owner, spreading the
  per-node read load the parallel cost model maxes over;
* **failover**: ``fail_node`` marks a node down (its disk survives but
  is unreachable) and eagerly re-replicates every key range that lost a
  copy from the surviving replicas, so any single-node crash loses no
  data while fewer than R owners of a key are down;
* **recovery**: ``recover_node`` first applies the deletes that were
  logged while the node was down (no stale resurrection), then
  re-syncs every key range the node owns again from the replicas that
  kept serving, and drops the ranges failover had parked elsewhere;
* **elasticity**: ``add_node`` / ``remove_node`` migrate exactly the
  key ranges whose preference lists changed.

Every migration — failover, recovery, scale-out, decommission — charges
``rebalance_keys_moved`` / ``rebalance_bytes_moved`` and one bulk
round trip per synced peer to the receiving node's
:class:`~repro.kv.node.NodeCounters`, and the latest event is summarized
in :attr:`KVCluster.last_rebalance` so Exp-4 can plot elasticity cost.

The invariant maintained after every membership event is: **every live
owner of a key holds its current value, and no live non-owner holds
it**. Reads may therefore hit any live owner, and blind scans visit each
logical pair exactly once by yielding it only from its primary (first
live) owner.

Concurrency (PR 5)
------------------

The cluster is safe to share between the query service's worker threads.
A writer-preferring :class:`~repro.locks.RWLock` splits operations in
two classes:

* **shared** (read lock): ``get`` / ``multi_get`` / ``peek`` / ``scan``
  / ``namespace_keys`` / ``namespaces`` / counters — and also ``put`` /
  ``multi_put`` / ``delete``, whose per-key effects are serialized by
  each :class:`StorageNode`'s own mutex. Many queries (and the ordinary
  write stream) proceed concurrently.
* **exclusive** (write lock): membership churn (``add_node`` /
  ``remove_node`` / ``fail_node`` / ``recover_node`` and the rebalance
  sweeps they trigger), ``drop_namespace`` and ``register_cache`` —
  anything that rewires placement or sweeps multiple nodes atomically.

Shared-path scans materialize their pairs per node under the node mutex
and *then* stream them to the caller, so no cluster lock is ever held
across a ``yield``. Counters are thread-sharded (see
:mod:`repro.kv.node`), so shared-path metering is lock-free and
lost-update-free, and :meth:`KVCluster.get_stats` can hand out a
snapshot whose invariants (``hits <= gets``) always hold.

Transport (PR 6)
----------------

``transport="local"`` (the default) keeps nodes as in-process objects —
the paper's cost model, exactly as before. ``transport="socket"`` makes
the cluster **shared-nothing**: each node is its own OS process
(:class:`~repro.kv.remote.RemoteNode` → forked :mod:`repro.kv.server`)
reached over length-prefixed binary frames (:mod:`repro.kv.wire`). The
``REPRO_KV_TRANSPORT`` environment variable overrides the default so an
unmodified test suite runs over real processes.

Counters stay **client-side** (a remote node inherits every counting
method from :class:`StorageNode`), so accounting is identical across
transports. A dead node process surfaces as
:class:`~repro.errors.NodePeerError` inside an operation; the cluster
treats that as a crash detection — mark the peer down, re-replicate its
ranges from the survivors, retry the operation — and raises
:class:`~repro.errors.ClusterUnavailableError` only when no replica is
left. ``fail_node`` keeps **partition** semantics on both transports
(the process survives, so recovery restores its store);
``fail_node(kill=True)`` or an external ``SIGKILL`` models a real
crash: the node's volatile store dies *on both transports* (PR 8 fixed
the local transport silently keeping partition semantics here), and
recovery restarts the node — empty + full re-sync when volatile,
replayed from its WAL when durable. Clusters holding processes should
be ``close()``d (or used as context managers); a garbage-collected
cluster reaps its children via a finalizer either way.

Durability (PR 8)
-----------------

``durability="wal"`` (or a non-``None`` ``data_dir``, or the
``REPRO_KV_DURABILITY`` environment variable) makes every node
crash-consistent: each gets its own subdirectory ``node-<id>`` under
the cluster's ``data_dir`` (an owned temporary directory, removed at
close, unless the caller supplies one) holding a checkpoint + WAL
generation (:mod:`repro.kv.wal` / :mod:`repro.kv.checkpoint`).
``fsync_policy`` tunes the group-commit window and
``checkpoint_interval`` the replay bound. A killed durable node
recovers by **replay + delta catch-up**: restart replays its own
checkpoint and log tail, then the recovery sweep applies only the
tombstoned deletes and changed values it missed — strictly fewer bytes
than the empty-respawn full re-sync a volatile node needs. A cluster
constructed on an existing ``data_dir`` (same topology) recovers every
node's acked writes by replay.
"""

from __future__ import annotations

import os
import shutil
import tempfile
import threading
import weakref
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.errors import ClusterUnavailableError, NodePeerError
from repro.kv import wal as walmod
from repro.kv.codec import encode_value
from repro.kv.hashring import HashRing
from repro.kv.node import NodeCounters, StorageNode
from repro.kv.remote import RemoteNode
from repro.locks import RWLock, make_lock
from repro.mvcc.versions import VersionStore

#: environment override for the default transport, so an unmodified test
#: suite can be pointed at real node processes (the CI socket matrix
#: sets ``REPRO_KV_TRANSPORT=socket``)
TRANSPORT_ENV = "REPRO_KV_TRANSPORT"
TRANSPORTS = ("local", "socket")

#: environment override for the default durability mode, so an
#: unmodified test suite runs with write-ahead logging on (the CI
#: crash-recovery matrix sets ``REPRO_KV_DURABILITY=wal``)
DURABILITY_ENV = "REPRO_KV_DURABILITY"
DURABILITY_MODES = ("off", "wal")


def _close_nodes(nodes: Dict[int, StorageNode],
                 owned_dir: Optional[str] = None) -> None:
    """GC/exit safety net: terminate any node processes still running
    when a cluster is dropped without :meth:`KVCluster.close`, and
    remove the cluster-owned scratch data directory (if any)."""
    for node in nodes.values():
        close = getattr(node, "close", None)
        if close is not None:
            try:
                close()
            # repro-lint: disable=broad-except -- GC/exit teardown safety
            # net: a dying node process must not abort the sweep
            except Exception:
                pass
    if owned_dir is not None:
        shutil.rmtree(owned_dir, ignore_errors=True)


@dataclass
class RebalanceReport:
    """What one membership event moved (also charged to node counters)."""

    keys_moved: int = 0
    bytes_moved: int = 0
    round_trips: int = 0
    keys_dropped: int = 0

    def __str__(self) -> str:
        return (
            f"moved {self.keys_moved} keys / {self.bytes_moved}B "
            f"in {self.round_trips} transfers, "
            f"dropped {self.keys_dropped}"
        )


@dataclass
class ClusterStats:
    """A consistent point-in-time snapshot of the cluster's accounting.

    Taken under the cluster lock from the thread-sharded counters, so
    cross-field invariants hold (``hits <= gets``, replica counts match
    membership) — unlike reading live counters mid-write, which could
    observe a torn state. All counter objects are copies; mutating them
    affects nothing.
    """

    totals: NodeCounters = field(default_factory=NodeCounters)
    per_node: Dict[int, NodeCounters] = field(default_factory=dict)
    num_nodes: int = 0
    num_live_nodes: int = 0
    replication_factor: int = 1
    #: ``"local"`` or ``"socket"`` — which transport served the ops
    transport: str = "local"
    #: aggregate of every registered client-side block cache (None when
    #: no cache is registered); snapshot-consistent per cache
    cache: Optional[object] = None


class KVCluster:
    """A cluster of :class:`StorageNode` behind a consistent-hash ring."""

    def __init__(
        self,
        num_nodes: int = 4,
        ring_replicas: int = 64,
        engine: str = "mem",
        replication_factor: int = 1,
        transport: Optional[str] = None,
        data_dir: Optional[str] = None,
        durability: Optional[str] = None,
        fsync_policy: str = "group",
        checkpoint_interval: Optional[int] = None,
    ) -> None:
        if num_nodes <= 0:
            raise ValueError("num_nodes must be positive")
        if replication_factor <= 0:
            raise ValueError("replication_factor must be positive")
        if replication_factor > num_nodes:
            raise ValueError(
                f"replication_factor {replication_factor} exceeds "
                f"num_nodes {num_nodes}"
            )
        if transport is None:
            transport = os.environ.get(TRANSPORT_ENV, "local")
        if transport not in TRANSPORTS:
            raise ValueError(
                f"unknown transport {transport!r}; expected one of "
                f"{list(TRANSPORTS)}"
            )
        if durability is None:
            if data_dir is not None:
                durability = "wal"
            else:
                durability = os.environ.get(DURABILITY_ENV, "off")
        if durability not in DURABILITY_MODES:
            raise ValueError(
                f"unknown durability mode {durability!r}; expected one "
                f"of {list(DURABILITY_MODES)}"
            )
        if durability == "off" and data_dir is not None:
            raise ValueError(
                "data_dir given but durability='off' — a data directory "
                "implies write-ahead logging"
            )
        #: ``"local"`` = in-process node objects; ``"socket"`` = one OS
        #: process per node behind the wire protocol (see repro.kv.wire)
        self.transport = transport
        self.engine = engine
        self.replication_factor = replication_factor
        #: ``"off"`` = volatile nodes (the default); ``"wal"`` = every
        #: node write-ahead-logs + checkpoints under ``data_dir``
        self.durability = durability
        self.fsync_policy = fsync_policy
        self.checkpoint_interval = checkpoint_interval
        self._owns_data_dir = False
        if durability == "wal":
            walmod.validate_fsync_policy(fsync_policy)
            if data_dir is None:
                # scratch durability: crash-consistent for the cluster's
                # lifetime, removed when it closes / is collected
                data_dir = tempfile.mkdtemp(prefix="repro-kv-")
                self._owns_data_dir = True
        self.data_dir = data_dir
        self.nodes: Dict[int, StorageNode] = {}
        self.ring = HashRing(replicas=ring_replicas)
        #: node ids currently crashed (on the ring, but unreachable)
        self._down: Set[int] = set()
        #: per-down-node log of deletes it missed (full keys / prefixes),
        #: applied on recovery so stale entries cannot resurrect
        self._tombstone_keys: Dict[int, Set[bytes]] = {}
        self._tombstone_prefixes: Dict[int, List[bytes]] = {}
        #: client-side block caches subscribed to write invalidations
        self._caches: List = []
        #: MVCC version overlay (attached by a transaction-enabled
        #: system): reads pinned at a snapshot epoch are answered from
        #: it, and commit-epoch writes record superseded values into it
        self._versions: Optional[VersionStore] = None
        #: every namespace a write has touched (all writes flow through
        #: this client, so the registry is complete); lets namespace
        #: enumeration avoid decode-scanning the whole cluster
        self._namespaces: Set[str] = set()
        #: summary of the most recent migration (None before any event)
        self.last_rebalance: Optional[RebalanceReport] = None
        #: shared/exclusive lock (see "Concurrency" in the module docs):
        #: reads and ordinary writes share it, membership events and
        #: namespace drops hold it exclusively
        self._lock = RWLock("KVCluster._lock")
        #: guards the namespace registry (touched on the shared path)
        self._meta_lock = make_lock("KVCluster._meta_lock")
        self._closed = False
        #: kills any still-running node processes if the cluster is
        #: garbage-collected without close() — tests create hundreds of
        #: throwaway clusters and must not leak children (or scratch
        #: data directories)
        self._finalizer = weakref.finalize(
            self, _close_nodes, self.nodes,
            self.data_dir if self._owns_data_dir else None,
        )
        for node_id in range(num_nodes):
            self._add_node(node_id)

    # -- cache invalidation bus -------------------------------------------

    def register_cache(self, cache) -> None:
        """Subscribe a client-side block cache to write invalidations.

        Every write that flows through the cluster (``put``,
        ``multi_put``, ``delete``, ``drop_namespace``) invalidates the
        touched ``(namespace, key_bytes)`` in every registered cache, so
        read-through caches can never serve stale payloads. Replica
        migration never changes a key's logical value, so rebalancing
        needs no invalidations — the bus stays write-driven. Idempotent.
        """
        with self._lock.write():
            if cache is not None and all(
                c is not cache for c in self._caches
            ):
                self._caches.append(cache)

    def _invalidate(self, namespace: str, key_bytes: bytes) -> None:
        for cache in self._caches:
            cache.invalidate(namespace, key_bytes)

    # -- MVCC overlay ------------------------------------------------------

    def attach_versions(self, versions: VersionStore) -> None:
        """Attach the MVCC version overlay (idempotent for the same
        store; attaching a different one is refused — the overlay's
        chains describe *this* cluster's write history)."""
        with self._lock.write():
            if self._versions is versions:
                return
            if self._versions is not None:
                raise ValueError(
                    "a version store is already attached"
                )
            self._versions = versions

    @property
    def versions(self) -> Optional[VersionStore]:
        """The attached MVCC overlay (None = versioning off)."""
        return self._versions

    def _read_overlay_epoch(self) -> Tuple[Optional[VersionStore],
                                           Optional[int]]:
        """The overlay + the calling thread's pinned epoch (None, None
        when versioning is off or the thread reads latest state)."""
        versions = self._versions
        if versions is None:
            return None, None
        return versions, versions.read_epoch()

    def _record_overwrite(
        self, namespace: str, key_bytes: bytes, full: bytes
    ) -> None:
        """Capture a key's superseded value before a commit overwrites
        it. No-op outside a recording (commit) context — loads, WAL
        replay and rebalancing are not versioned. The old value is
        peeked OUTSIDE the version-store lock (node I/O must never run
        under it), which is race-free because the commit mutex admits
        one installing writer at a time."""
        # repro-lint: holds=_lock -- called from the shared write paths
        versions = self._versions
        if versions is None:
            return
        epoch = versions.recording_epoch()
        if epoch is None:
            return
        if not versions.version_needed(namespace, key_bytes, epoch):
            return
        old_value = self._owners(full)[0].peek(full)
        versions.record_write(namespace, key_bytes, epoch, old_value)

    # -- topology --------------------------------------------------------

    def _add_node(self, node_id: int, fresh: bool = False) -> StorageNode:
        # repro-lint: holds=_lock -- callers hold the write lock, except
        # __init__, which owns the not-yet-shared cluster exclusively
        node_dir = (
            os.path.join(self.data_dir, f"node-{node_id}")
            if self.data_dir is not None
            else None
        )
        if fresh and node_dir is not None:
            # a NEW member must start empty — node ids can be reused
            # after remove_node, and replaying the removed node's stale
            # generation would resurrect data the cluster migrated away
            shutil.rmtree(node_dir, ignore_errors=True)
        if self.transport == "socket":
            node: StorageNode = RemoteNode(
                node_id, engine=self.engine,
                data_dir=node_dir,
                fsync_policy=self.fsync_policy,
                checkpoint_interval=self.checkpoint_interval,
            )
        else:
            node = StorageNode(
                node_id, engine=self.engine,
                data_dir=node_dir,
                fsync_policy=self.fsync_policy,
                checkpoint_interval=self.checkpoint_interval,
            )
        self.nodes[node_id] = node
        self.ring.add_node(node_id)
        return node

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Shut the cluster down, terminating any node processes.

        Idempotent; ``transport="local"`` clusters have nothing to
        reap, so it is always safe to call. Also runs automatically
        when the cluster is garbage-collected.
        """
        with self._lock.write():
            if self._closed:
                return
            self._closed = True
        self._finalizer()

    def __enter__(self) -> "KVCluster":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- peer failure handling ---------------------------------------------

    def _peer_failover(self, fn: Callable):
        """Run ``fn``, absorbing dead-peer errors by failing over.

        A :class:`NodePeerError` (socket transport only: the node
        process died or its port vanished) marks the peer down,
        re-replicates its ranges from the survivors, and *retries the
        operation* against the repaired membership. The loop is
        bounded: every iteration removes one node from the live set,
        and with none left the operation raises
        :class:`ClusterUnavailableError` instead.
        """
        while True:
            try:
                return fn()
            except NodePeerError as exc:
                self._note_peer_down(exc.node_id)

    def _note_peer_down(self, node_id: int) -> None:
        """Crash-detect ``node_id``: mark it down exactly like
        :meth:`fail_node` would, reap its process, and restore the
        replication invariant. Cascading deaths discovered while
        re-replicating are absorbed in the same sweep."""
        with self._lock.write():
            while True:
                node = self.nodes.get(node_id)
                if node is None or node_id in self._down:
                    return
                self._down.add(node_id)
                self._tombstone_keys[node_id] = set()
                self._tombstone_prefixes[node_id] = []
                if isinstance(node, RemoteNode):
                    node.close()
                try:
                    self.last_rebalance = self._rebalance()
                    return
                except NodePeerError as exc:
                    node_id = exc.node_id

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    @property
    def num_live_nodes(self) -> int:
        return len(self.nodes) - len(self._down)

    @property
    def live_node_ids(self) -> List[int]:
        return sorted(nid for nid in self.nodes if nid not in self._down)

    @property
    def down_node_ids(self) -> List[int]:
        return sorted(self._down)

    def is_live(self, node_id: int) -> bool:
        return node_id in self.nodes and node_id not in self._down

    def add_node(self) -> StorageNode:
        """Add a storage node and migrate the key ranges it now owns.

        Models horizontal scale-out (Exp-4). Only keys whose preference
        list changed are moved — the consistent-hashing guarantee — and
        the copies are charged to the rebalance counters.
        """
        with self._lock.write():
            new_id = max(self.nodes) + 1
            node = self._add_node(new_id, fresh=True)
            self.last_rebalance = self._rebalance()
            return node

    def remove_node(self, node_id: int) -> None:
        """Decommission a node, migrating its data to the new owners.

        Removing a **down** node discards whatever only it held (a crash
        followed by replacement); removing the last node is refused.
        """
        with self._lock.write():
            if node_id not in self.nodes:
                raise ValueError(f"node {node_id} not in the cluster")
            if len(self.nodes) == 1:
                raise ValueError("cannot remove the last node")
            self.ring.remove_node(node_id)
            if node_id in self._down:
                # crashed node replaced: its disk never comes back
                self._down.discard(node_id)
                self._tombstone_keys.pop(node_id, None)
                self._tombstone_prefixes.pop(node_id, None)
                node = self.nodes.pop(node_id)
                node.close()
                self.last_rebalance = self._rebalance()
                return
            # live decommission: the leaving node is a valid source; the
            # sweep copies its ranges to the new owners, then empties it
            self.last_rebalance = self._rebalance()
            node = self.nodes.pop(node_id)
            node.close()

    def fail_node(self, node_id: int, kill: bool = False) -> None:
        """Crash a node: unreachable, but its disk survives for recovery.

        The surviving replicas eagerly re-replicate every key range that
        lost a copy onto the next live node of its ring walk, so reads
        and writes keep succeeding as long as fewer than
        ``replication_factor`` owners of a key are down.

        The default is **partition** semantics on both transports: the
        cluster stops talking to the node but its store survives (a
        socket node's process keeps running), so local and socket
        failover/recovery behave — and count — identically.
        ``kill=True`` models a real crash instead: the node's volatile
        store is destroyed on *both* transports (a socket node's
        process is terminated, a local node drops its store object —
        before PR 8 the local transport silently kept partition
        semantics here). Recovery then restarts the node: by WAL replay
        + delta catch-up when the cluster is durable, empty + full
        re-sync otherwise. A node that cannot honor crash semantics
        (an injected store) warns ``RuntimeWarning`` and keeps
        partition semantics.
        """
        with self._lock.write():
            if node_id not in self.nodes:
                raise ValueError(f"node {node_id} not in the cluster")
            if node_id in self._down:
                raise ValueError(f"node {node_id} is already down")
            self._down.add(node_id)
            self._tombstone_keys[node_id] = set()
            self._tombstone_prefixes[node_id] = []
            if kill:
                self.nodes[node_id].crash()
            self.last_rebalance = self._rebalance()

    def recover_node(self, node_id: int) -> None:
        """Bring a crashed node back and re-sync it with the cluster.

        Recovery first applies the deletes the node missed while down
        (logged per down node — no stale resurrection), then re-syncs
        the ranges it owns again from the replicas that kept serving,
        overwriting any stale values, and drops the failover copies the
        stand-in nodes no longer own.

        A node that was *killed* (``fail_node(kill=True)`` or an
        external ``SIGKILL``) restarts first: a durable node replays
        its checkpoint + WAL tail and then takes the tombstones + delta
        sweep like a partitioned node — only the writes it missed move
        over the wire; a volatile node comes back empty, its tombstones
        are moot, and the sweep re-syncs everything it owns.
        """
        with self._lock.write():
            if node_id not in self.nodes:
                raise ValueError(f"node {node_id} not in the cluster")
            if node_id not in self._down:
                raise ValueError(f"node {node_id} is not down")
            node = self.nodes[node_id]
            crashed = node.is_crashed
            if crashed:
                node.restart()
            if crashed and not node.durable:
                # empty respawn: nothing to tombstone, the stale-range
                # sweep re-syncs everything the node owns
                self._tombstone_prefixes.pop(node_id, None)
                self._tombstone_keys.pop(node_id, None)
            else:
                store = node.store
                prefixes = self._tombstone_prefixes.pop(node_id, [])
                store.multi_delete(
                    [
                        key
                        for prefix in prefixes
                        for key, _ in store.scan(prefix)
                    ]
                )
                keys = self._tombstone_keys.pop(node_id, set())
                if keys:
                    store.multi_delete(sorted(keys))
            self._down.discard(node_id)
            self.last_rebalance = self._rebalance(stale_id=node_id)

    # -- placement --------------------------------------------------------

    def _live_owner_ids(self, full_key: bytes) -> List[int]:
        """The key's preference list: first R distinct LIVE ring nodes."""
        if self.replication_factor == 1 and not self._down:
            return [self.ring.node_for(full_key)]
        owners: List[int] = []
        for node_id in self.ring.iter_nodes(full_key):
            if node_id not in self._down:
                owners.append(node_id)
                if len(owners) == self.replication_factor:
                    break
        return owners

    def _owners(self, full_key: bytes) -> List[StorageNode]:
        owners = self._live_owner_ids(full_key)
        if not owners:
            raise ClusterUnavailableError(
                "no live replica for key (all owners are down)"
            )
        return [self.nodes[node_id] for node_id in owners]

    @staticmethod
    def _node_load(node: StorageNode) -> int:
        """A node's cumulative read load across every serving thread."""
        return node.read_load

    def _read_replica(self, full_key: bytes) -> StorageNode:
        """The cheapest live owner: least-loaded, ties to the lowest id."""
        owners = self._owners(full_key)
        if len(owners) == 1:
            return owners[0]
        return min(owners, key=lambda n: (self._node_load(n), n.node_id))

    def _is_primary(self, full_key: bytes, node_id: int) -> bool:
        """Is ``node_id`` the first live owner of ``full_key``?"""
        for candidate in self.ring.iter_nodes(full_key):
            if candidate not in self._down:
                return candidate == node_id
        return False

    @staticmethod
    def full_key(namespace: str, key_bytes: bytes) -> bytes:
        return encode_value(namespace) + key_bytes

    def _live_nodes(self) -> List[StorageNode]:
        return [
            node
            for node_id, node in self.nodes.items()
            if node_id not in self._down
        ]

    # -- KV API ------------------------------------------------------------

    def get(self, namespace: str, key_bytes: bytes,
            n_values: int = 1) -> Optional[bytes]:
        """Point get; counts one get on the replica that served it."""
        def op() -> Optional[bytes]:
            with self._lock.read():
                versions, epoch = self._read_overlay_epoch()
                if versions is not None and epoch is not None:
                    handled, value = versions.read_visible(
                        namespace, key_bytes, epoch
                    )
                    if handled:
                        # overlay read: client-side, zero #get — like a
                        # cache hit (metered in VersionStats instead)
                        return value
                full = self.full_key(namespace, key_bytes)
                value = self._read_replica(full).get(
                    full, n_values=n_values
                )
                if versions is not None and epoch is not None:
                    # a commit may have overwritten the key between the
                    # overlay check and the node read; its superseded
                    # value is in the overlay by then (recorded before
                    # the base write), so re-check
                    handled, overlaid = versions.read_visible(
                        namespace, key_bytes, epoch
                    )
                    if handled:
                        return overlaid
                return value
        return self._peer_failover(op)

    def multi_get(
        self,
        namespace: str,
        keys: Sequence[bytes],
        n_values_each: int = 1,
    ) -> List[Optional[bytes]]:
        """Batched get: ONE round trip per serving node for the whole batch.

        Keys are grouped by the replica chosen to serve them — the
        least-loaded live owner, with the batch's own assignments
        balancing the load greedily — and each node serves its group
        with a single :meth:`StorageNode.multi_get`. Duplicate keys
        within the batch are fetched once per node and fanned back out.
        Results are positional — ``out[i]`` answers ``keys[i]`` — so
        callers keep their ordering guarantees regardless of placement.
        """
        def op() -> List[Optional[bytes]]:
            with self._lock.read():
                results: List[Optional[bytes]] = [None] * len(keys)
                overlaid: List[bool] = [False] * len(keys)
                versions, epoch = self._read_overlay_epoch()
                if versions is not None and epoch is not None:
                    # overlay pre-pass: keys answered from the version
                    # chains never reach a node (zero #get, like a
                    # cache hit — metered in VersionStats)
                    visible = versions.read_visible_many(
                        namespace, keys, epoch
                    )
                    for index, (handled, value) in enumerate(visible):
                        if handled:
                            overlaid[index] = True
                            results[index] = value
                    if all(overlaid):
                        return results
                by_node: Dict[int, List[bytes]] = {}
                positions: Dict[Tuple[int, bytes], List[int]] = {}
                replicated = (
                    self.replication_factor > 1 or bool(self._down)
                )
                loads: Dict[int, float] = {}
                if replicated:
                    loads = {
                        node.node_id: float(self._node_load(node))
                        for node in self._live_nodes()
                    }
                for index, key_bytes in enumerate(keys):
                    if overlaid[index]:
                        continue
                    full = self.full_key(namespace, key_bytes)
                    if replicated:
                        owner_ids = self._live_owner_ids(full)
                        if not owner_ids:
                            raise ClusterUnavailableError(
                                "no live replica for key "
                                "(all owners are down)"
                            )
                        node_id = min(
                            owner_ids, key=lambda nid: (loads[nid], nid)
                        )
                        loads[node_id] += 1.0
                    else:
                        node_id = self.ring.node_for(full)
                    slot = positions.setdefault((node_id, full), [])
                    if not slot:
                        by_node.setdefault(node_id, []).append(full)
                    slot.append(index)
                for node_id, node_keys in by_node.items():
                    values = self.nodes[node_id].multi_get(
                        node_keys, n_values_each=n_values_each
                    )
                    for full, value in zip(node_keys, values):
                        for index in positions[(node_id, full)]:
                            results[index] = value
                if versions is not None and epoch is not None:
                    # commits racing the node fetches recorded the
                    # superseded values before overwriting; re-check so
                    # no too-new value leaks into the snapshot
                    recheck = versions.read_visible_many(
                        namespace,
                        [k for i, k in enumerate(keys)
                         if not overlaid[i]],
                        epoch,
                    )
                    fetched = iter(recheck)
                    for index in range(len(keys)):
                        if overlaid[index]:
                            continue
                        handled, value = next(fetched)
                        if handled:
                            results[index] = value
                return results
        return self._peer_failover(op)

    def put(self, namespace: str, key_bytes: bytes, value: bytes,
            n_values: int = 1) -> None:
        """Replicated put: written to (and counted on) every live owner.

        Shared-path write: placement is stable under the read lock
        (membership events are exclusive) and the per-node mutex
        serializes same-node store mutations.
        """
        def op() -> None:
            with self._lock.read():
                with self._meta_lock:
                    self._namespaces.add(namespace)
                full = self.full_key(namespace, key_bytes)
                # overlay BEFORE base write: a snapshot reader either
                # sees the old base value or finds it in the overlay —
                # never a torn in-between
                self._record_overwrite(namespace, key_bytes, full)
                self._invalidate(namespace, key_bytes)
                for node in self._owners(full):
                    node.put(full, value, n_values=n_values)
        self._peer_failover(op)

    def multi_put(
        self,
        namespace: str,
        items: Sequence[Tuple[bytes, bytes]],
        n_values_each: int = 1,
    ) -> None:
        """Batched put: ONE round trip per owning node, fanned out to all
        R replicas. Later duplicates win (items are applied in order
        within each node's batch)."""
        def op() -> None:
            with self._lock.read():
                if items:
                    with self._meta_lock:
                        self._namespaces.add(namespace)
                by_node: Dict[int, List[Tuple[bytes, bytes]]] = {}
                for key_bytes, value in items:
                    full = self.full_key(namespace, key_bytes)
                    self._record_overwrite(namespace, key_bytes, full)
                    self._invalidate(namespace, key_bytes)
                    owners = self._live_owner_ids(full)
                    if not owners:
                        raise ClusterUnavailableError(
                            "no live replica for key (all owners are down)"
                        )
                    for node_id in owners:
                        by_node.setdefault(node_id, []).append(
                            (full, value)
                        )
                for node_id, node_items in by_node.items():
                    self.nodes[node_id].multi_put(
                        node_items, n_values_each=n_values_each
                    )
        self._peer_failover(op)

    def delete(self, namespace: str, key_bytes: bytes) -> bool:
        """Replicated delete; logged as a tombstone for every down node."""
        def op() -> bool:
            with self._lock.read():
                full = self.full_key(namespace, key_bytes)
                self._record_overwrite(namespace, key_bytes, full)
                self._invalidate(namespace, key_bytes)
                removed = False
                for node in self._owners(full):
                    removed = node.delete(full) or removed
                for log in self._tombstone_keys.values():
                    log.add(full)
                return removed
        return self._peer_failover(op)

    def peek(self, namespace: str, key_bytes: bytes) -> Optional[bytes]:
        """Uncounted read (maintenance bookkeeping)."""
        def op() -> Optional[bytes]:
            with self._lock.read():
                versions, epoch = self._read_overlay_epoch()
                full = self.full_key(namespace, key_bytes)
                value = self._owners(full)[0].peek(full)
                if versions is not None and epoch is not None:
                    handled, overlaid = versions.read_visible(
                        namespace, key_bytes, epoch
                    )
                    if handled:
                        return overlaid
                return value
        return self._peer_failover(op)

    def scan(
        self,
        namespace: str,
        count_as_gets: bool = True,
        values_of: Optional[Callable[[bytes, bytes], int]] = None,
    ) -> Iterator[Tuple[bytes, bytes]]:
        """Scan all pairs of a namespace, each yielded exactly once.

        This is the §3 scan: iterate keys via ``next()`` and fetch each
        value with ``get``; with ``count_as_gets`` every pair visited is
        tallied as one get on its node, which is exactly the "blind scan"
        cost TaaV suffers. Under replication each logical pair is served
        (and counted) only by its primary live owner, so #get stays the
        logical pair count, not R× it. Yields (stripped key, value).

        ``values_of`` maps a (stripped key, value) pair to its logical
        value count, so decode-aware callers charge ``values_read``
        exactly like :meth:`StorageNode.get` would (a TaaV pair is
        ``arity`` values, a stats sidecar ``4 × attrs``); without it
        every pair counts as one value — never zero, which silently
        undercounted the blind-scan #data.
        """
        prefix = encode_value(namespace)
        plen = len(prefix)

        # materialize the snapshot under the read lock (per-node scans
        # take the node mutex, so concurrent puts cannot mutate a store
        # mid-iteration), then stream it without holding any lock
        def take_snapshot() -> List[Tuple[StorageNode, bytes, bytes]]:
            with self._lock.read():
                dedup = self.replication_factor > 1
                snapshot: List[Tuple[StorageNode, bytes, bytes]] = []
                for node in self._live_nodes():
                    for key, value in node.snapshot_scan(prefix):
                        if dedup and not self._is_primary(
                            key, node.node_id
                        ):
                            continue
                        snapshot.append((node, key[plen:], value))
                return snapshot

        snapshot = self._peer_failover(take_snapshot)
        versions = self._versions
        if versions is not None:
            epoch = versions.read_epoch()
            if epoch is not None:
                # rewrite the scan to state-as-of-epoch: overlay values
                # replace too-new ones, keys inserted after the epoch
                # drop out, and keys deleted after it come back as
                # node-less extras (uncounted — no node served them)
                snapshot = versions.adjust_scan(
                    namespace, snapshot, epoch
                )
        for node, stripped, value in snapshot:
            if count_as_gets and node is not None:
                # the blind scan issues one full get (and thus one
                # round trip) per pair — the cost BaaV removes
                counters = node.counters
                counters.gets += 1
                counters.round_trips += 1
                counters.hits += 1
                counters.bytes_out += len(value)
                values = values_of(stripped, value) if values_of else 1
                counters.values_read += values
                node.add_read_load(1 + values)
            yield stripped, value

    def namespace_keys(self, namespace: str) -> List[bytes]:
        """All (stripped) key bytes of a namespace, uncounted, distinct."""
        prefix = encode_value(namespace)
        plen = len(prefix)

        def op() -> List[bytes]:
            with self._lock.read():
                dedup = self.replication_factor > 1
                keys: List[bytes] = []
                for node in self._live_nodes():
                    for key, _ in node.snapshot_scan(prefix):
                        if dedup and not self._is_primary(
                            key, node.node_id
                        ):
                            continue
                        keys.append(key[plen:])
                versions, epoch = self._read_overlay_epoch()
                if versions is not None and epoch is not None:
                    keys = versions.adjust_keys(namespace, keys, epoch)
                return keys
        return self._peer_failover(op)

    def namespaces(self) -> List[str]:
        """All namespaces with at least one pair on a live node.

        The write-touched registry narrows the candidates (every write
        flows through this client), and each candidate is confirmed
        with a prefix probe that stops at its first pair — no
        whole-cluster scan. Used by the drop cascade to enumerate
        dependent ``__idx__`` namespaces.
        """
        def op() -> List[str]:
            with self._meta_lock:
                candidates = sorted(self._namespaces)
            with self._lock.read():
                out: List[str] = []
                for namespace in candidates:
                    prefix = encode_value(namespace)
                    if any(
                        node.has_prefix(prefix)
                        for node in self._live_nodes()
                    ):
                        out.append(namespace)
                return out
        return self._peer_failover(op)

    def drop_namespace(self, namespace: str) -> int:
        """Delete every pair in ``namespace``; return how many (logical).

        Dropping a relation's TaaV namespace (``taav:<rel>``) cascades
        to its dependent secondary-index namespaces
        (``__idx__/<rel>/...``): index entries post primary keys into
        the dropped data, so leaving them behind would orphan the index.
        The cascaded drops are not counted in the return value.
        """
        def op() -> int:
            with self._lock.write():
                for cache in self._caches:
                    cache.invalidate_namespace(namespace)
                prefix = encode_value(namespace)
                dropped: Set[bytes] = set()
                for node in self._live_nodes():
                    # one bulk RPC per node on the socket transport
                    dropped.update(node.store.drop_prefix(prefix))
                for log in self._tombstone_prefixes.values():
                    log.append(prefix)
                if self._versions is not None:
                    # DDL is exclusive: no pinned reader is mid-query on
                    # the namespace, so its version state goes with it
                    self._versions.forget_namespace(namespace)
                with self._meta_lock:
                    self._namespaces.discard(namespace)
                    remaining = sorted(self._namespaces)
                if namespace.startswith("taav:"):
                    dependent_prefix = (
                        f"__idx__/{namespace[len('taav:'):]}/"
                    )
                    for dependent in remaining:
                        if dependent.startswith(dependent_prefix):
                            self.drop_namespace(dependent)
                return len(dropped)
        return self._peer_failover(op)

    # -- rebalancing -------------------------------------------------------

    def _rebalance(self, stale_id: Optional[int] = None) -> RebalanceReport:
        """Restore the replication invariant after a membership event.

        Collects the authoritative value of every reachable key (a node
        that was down is never authoritative when any other holder
        exists), copies each key to the live owners that lack it, and
        drops it from live nodes that no longer own it. Copies are
        charged to the receiving node: ``rebalance_keys_moved`` /
        ``rebalance_bytes_moved`` per key, plus one bulk round trip per
        distinct source peer it synced from.
        """
        report = RebalanceReport()
        if not len(self.ring):
            return report
        state: Dict[bytes, bytes] = {}
        holders: Dict[bytes, List[int]] = {}
        #: what the possibly-stale node holds — captured during the
        #: sweep so staleness checks need no per-key store reads (on
        #: the socket transport each would be a round trip)
        stale_contents: Dict[bytes, bytes] = {}
        for node in self._live_nodes():
            node_id = node.node_id
            for key, value in node.store.scan():
                holders.setdefault(key, []).append(node_id)
                if node_id == stale_id:
                    stale_contents[key] = value
                    if key not in state:
                        state[key] = value
                else:
                    state[key] = value
        # (node receiving, node sending) pairs that exchanged a batch
        transfers: Set[Tuple[int, int]] = set()
        # defer the store mutations into per-node batches, flushed with
        # one multi_put / multi_delete each (one frame per node remote)
        pending_puts: Dict[int, List[Tuple[bytes, bytes]]] = {}
        pending_deletes: Dict[int, List[bytes]] = {}
        for key, value in state.items():
            owner_ids = self._live_owner_ids(key)
            holder_ids = holders[key]
            # authoritative source: the lowest-id holder that stayed up
            fresh = [h for h in holder_ids if h != stale_id]
            source_id = min(fresh) if fresh else holder_ids[0]
            for owner_id in owner_ids:
                node = self.nodes[owner_id]
                if owner_id not in holder_ids or (
                    owner_id == stale_id
                    and stale_contents.get(key) != value
                ):
                    pending_puts.setdefault(owner_id, []).append(
                        (key, value)
                    )
                    moved = len(key) + len(value)
                    node.counters.rebalance_keys_moved += 1
                    node.counters.rebalance_bytes_moved += moved
                    report.keys_moved += 1
                    report.bytes_moved += moved
                    transfers.add((owner_id, source_id))
            owner_set = set(owner_ids)
            for holder_id in holder_ids:
                if holder_id not in owner_set:
                    pending_deletes.setdefault(holder_id, []).append(key)
                    report.keys_dropped += 1
        for node_id, items in pending_puts.items():
            self.nodes[node_id].store.multi_put(items)
        for node_id, doomed in pending_deletes.items():
            self.nodes[node_id].store.multi_delete(doomed)
        for receiver_id, _ in transfers:
            self.nodes[receiver_id].counters.rebalance_round_trips += 1
        report.round_trips = len(transfers)
        return report

    # -- counters ----------------------------------------------------------

    def charge_values_read(self, extra: int, live_only: bool = True) -> None:
        """Spread ``extra`` logical values over the nodes' read counters.

        Decode-aware callers (BaaV block top-ups, index posting-list
        reads) know the logical value count only after decoding, when
        the serving node is no longer identifiable; the remainder is
        spread evenly so totals stay exact and per-node counts
        approximate. Runs under the read lock — membership churn is
        exclusive, so the node set cannot change mid-iteration.
        """
        if extra <= 0:
            return
        with self._lock.read():
            nodes = (
                self._live_nodes() if live_only
                else list(self.nodes.values())
            )
            share, remainder = divmod(extra, len(nodes))
            for index, node in enumerate(nodes):
                charge = share + (1 if index < remainder else 0)
                node.counters.values_read += charge
                node.add_read_load(charge)

    def reset_counters(self, thread_only: bool = False) -> None:
        """Zero the node counters.

        ``thread_only=True`` resets just the calling thread's shards —
        what a query execution does before metering itself, so
        concurrent queries on other threads keep their counts.
        """
        with self._lock.read():
            for node in self.nodes.values():
                node.reset_counters(thread_only=thread_only)

    def total_counters(self) -> NodeCounters:
        """Aggregate counters over all nodes and all serving threads."""
        with self._lock.read():
            total = NodeCounters()
            for node in self.nodes.values():
                total.add(node.counters_total())
            return total

    def thread_counters(self) -> NodeCounters:
        """Aggregate counters of the CALLING THREAD only.

        This is what per-query metric probes diff: a query executes on
        one thread, so its own shards meter exactly its I/O even while
        other queries hammer the same nodes.
        """
        with self._lock.read():
            total = NodeCounters()
            for node in self.nodes.values():
                shard = node.thread_counters()
                if shard is not None:
                    total.add(shard)
            return total

    def counters_per_node(self) -> Dict[int, NodeCounters]:
        with self._lock.read():
            return {
                node_id: node.counters_total()
                for node_id, node in self.nodes.items()
            }

    def max_node_counters(self) -> NodeCounters:
        """Counters of the busiest node (for max-per-stage cost models)."""
        with self._lock.read():
            busiest = NodeCounters()
            best = -1.0
            for node in self.nodes.values():
                counters = node.counters_total()
                weight = counters.gets + counters.values_read
                if weight > best:
                    best = weight
                    busiest = counters
            return busiest

    def get_stats(self) -> ClusterStats:
        """A snapshot-consistent view of the cluster's accounting.

        Taken under the cluster lock: membership cannot change
        mid-snapshot and every per-node aggregate is a copy, so the
        cross-counter invariants hold (``hits <= gets``, cache
        ``hits + misses == lookups``) — the live-counter read this
        replaces could tear them.
        """
        with self._lock.read():
            per_node = {
                node_id: node.counters_total()
                for node_id, node in self.nodes.items()
            }
            totals = NodeCounters()
            for counters in per_node.values():
                totals.add(counters)
            cache_total = None
            for cache in self._caches:
                stats = cache.stats  # itself a consistent snapshot
                if cache_total is None:
                    cache_total = stats
                else:
                    cache_total.add(stats)
            return ClusterStats(
                totals=totals,
                per_node=per_node,
                num_nodes=len(self.nodes),
                num_live_nodes=len(self.nodes) - len(self._down),
                replication_factor=self.replication_factor,
                transport=self.transport,
                cache=cache_total,
            )

    def wal_stats(self) -> Dict[str, int]:
        """Aggregate WAL counters over every live node (all zeros for a
        volatile cluster). ``fsyncs`` is what the cost model prices;
        ``records``/``bytes`` meter the logging overhead itself."""
        def op() -> Dict[str, int]:
            with self._lock.read():
                total = {"records": 0, "bytes": 0, "fsyncs": 0, "rolls": 0}
                for node_id, node in self.nodes.items():
                    if node_id in self._down:
                        continue
                    for key, value in node.wal_stats().items():
                        total[key] = total.get(key, 0) + value
                return total
        return self._peer_failover(op)

    def server_stats(self) -> Dict[int, Dict[str, int]]:
        """Per-node server-process counters (socket transport only;
        empty for local clusters). Down nodes are skipped."""
        with self._lock.read():
            out: Dict[int, Dict[str, int]] = {}
            for node_id, node in self.nodes.items():
                if node_id in self._down or not isinstance(
                    node, RemoteNode
                ):
                    continue
                out[node_id] = node.server_stats()
            return out

    def size_bytes(self) -> int:
        """Physical bytes across all nodes (replicas counted R times).

        Down nodes count too when their store survives (a partitioned
        node's disk, any local node): that matches the local-transport
        semantics. A *killed* node process has no bytes left to count.
        """
        def op() -> int:
            with self._lock.read():
                return sum(
                    node.size_bytes()
                    for node in self.nodes.values()
                    if not node.is_crashed
                )
        return self._peer_failover(op)

    def __repr__(self) -> str:
        down = f", down={sorted(self._down)}" if self._down else ""
        factor = (
            f", R={self.replication_factor}"
            if self.replication_factor > 1
            else ""
        )
        wire_ = (
            f", transport={self.transport}"
            if self.transport != "local"
            else ""
        )
        return f"KVCluster(nodes={self.num_nodes}{factor}{wire_}{down})"
