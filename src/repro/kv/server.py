"""The storage-node server: one process, one raw store, one socket.

Each remote node of a ``transport="socket"`` cluster is this loop running
in its own OS process (forked by :class:`repro.kv.remote.NodeProcess`),
serving the wire protocol of :mod:`repro.kv.wire` over a listening TCP
socket on ``127.0.0.1``. The process owns a single raw storage engine
(:class:`~repro.kv.memstore.MemStore` or
:class:`~repro.kv.lsm.LSMStore`) — the *node-level* bookkeeping
(per-thread counters, read-load) stays client-side in
:class:`~repro.kv.remote.RemoteNode`, so counting is byte-identical
across transports.

Connection handling is thread-per-connection with one store-wide mutex:
inside a node, operations serialize exactly as the in-process
``StorageNode._op_lock`` serializes them. Error discipline:

* an application error (the store raised) → ``STATUS_ERROR`` frame,
  connection keeps serving;
* a malformed request payload (garbage opcode, truncated body) →
  ``STATUS_PROTOCOL`` frame, connection keeps serving;
* a broken *stream* (truncated length prefix, oversized declared
  length) → best-effort ``STATUS_PROTOCOL`` frame, then the connection
  closes — the server itself always survives;
* ``SHUTDOWN`` → acknowledge, then ``os._exit(0)`` (no atexit games in
  a forked child).
"""

from __future__ import annotations

import os
import socket
import threading
from typing import Dict, Optional

from repro.errors import WireProtocolError
from repro.kv import wire
from repro.kv.checkpoint import NodeDurability
from repro.kv.lsm import LSMStore
from repro.kv.memstore import MemStore
from repro.locks import make_lock

#: engines a node process can host, by name (validated *before* spawn)
ENGINE_FACTORIES = {"mem": MemStore, "lsm": LSMStore}

#: opcodes that mutate the store — after one of these the server gives
#: the durability manager a chance to checkpoint/truncate the WAL
_MUTATING_OPS = frozenset({
    wire.OP_MULTI_PUT,
    wire.OP_DELETE,
    wire.OP_MULTI_DELETE,
    wire.OP_DROP_PREFIX,
    wire.OP_CLEAR,
})


def make_engine(engine: str, store_args: Optional[dict] = None):
    """Build a raw store by engine name; unknown names raise ValueError
    with the same message contract as :class:`~repro.kv.node.StorageNode`."""
    try:
        factory = ENGINE_FACTORIES[engine]
    except KeyError:
        raise ValueError(f"unknown storage engine {engine!r}") from None
    return factory(**(store_args or {}))


class NodeServer:
    """Serve one raw store over an already-bound listening socket."""

    def __init__(self, listener: socket.socket, store,
                 durability: Optional[NodeDurability] = None) -> None:
        self.listener = listener
        self.store = store
        #: owns this process's WAL + checkpoints (``None`` = volatile)
        self._durability = durability
        #: serializes store access across connections, like the
        #: in-process node's ``_op_lock``
        self._store_lock = make_lock("NodeServer._store_lock")
        self._stats_lock = make_lock("NodeServer._stats_lock")
        self._stats: Dict[str, int] = {
            "requests": 0,
            "app_errors": 0,
            "protocol_errors": 0,
            "connections": 0,
            "pid": os.getpid(),
        }

    # -- accounting ---------------------------------------------------------

    def _bump(self, key: str, by: int = 1) -> None:
        with self._stats_lock:
            self._stats[key] += by

    # -- request dispatch ---------------------------------------------------

    def _run_op(self, op: int, args: tuple) -> bytes:
        """Run one decoded request against the store; returns the OK body."""
        # repro-lint: holds=_store_lock -- _handle_request serializes every
        # store-touching opcode under the mutex (GET_STATS skips it and
        # touches only _stats, under _stats_lock)
        store = self.store
        if op == wire.OP_PING:
            return b""
        if op == wire.OP_MULTI_GET:
            return wire.encode_values(store.multi_get(args[0]))
        if op == wire.OP_MULTI_PUT:
            store.multi_put(args[0])
            return b""
        if op == wire.OP_DELETE:
            return wire.encode_bool(store.delete(args[0]))
        if op == wire.OP_MULTI_DELETE:
            return wire.encode_u64(store.multi_delete(args[0]))
        if op == wire.OP_SCAN:
            return wire.encode_pairs(list(store.scan(args[0])))
        if op == wire.OP_KEYS:
            prefix = args[0]
            if prefix:
                keys = [key for key, _ in store.scan(prefix)]
            else:
                keys = store.keys()
            return wire.encode_keys(keys)
        if op == wire.OP_NEXT_KEY:
            return wire.encode_opt_key(store.next_key(args[0]))
        if op == wire.OP_HAS_PREFIX:
            prefix = args[0]
            if not prefix:
                return wire.encode_bool(len(store) > 0)
            for _ in store.scan(prefix):
                return wire.encode_bool(True)
            return wire.encode_bool(False)
        if op == wire.OP_SIZE_BYTES:
            return wire.encode_u64(store.size_bytes())
        if op == wire.OP_COUNT:
            return wire.encode_u64(len(store))
        if op == wire.OP_DROP_PREFIX:
            return wire.encode_keys(store.drop_prefix(args[0]))
        if op == wire.OP_CLEAR:
            store.clear()
            return b""
        if op == wire.OP_GET_STATS:
            stats = self._durability.wal_stats() if self._durability else {}
            stats = {f"wal_{key}": value for key, value in stats.items()}
            with self._stats_lock:
                stats.update(self._stats)
                return wire.encode_stats(stats)
        raise AssertionError(f"unhandled opcode {op:#x}")

    def _handle_request(self, payload: bytes) -> Optional[bytes]:
        """One request payload → one response payload (``None`` after a
        SHUTDOWN acknowledgement has been queued by the caller)."""
        self._bump("requests")
        try:
            op, args = wire.decode_request(payload)
        except WireProtocolError as exc:
            self._bump("protocol_errors")
            return wire.encode_error(wire.STATUS_PROTOCOL, str(exc))
        if op == wire.OP_SHUTDOWN:
            return None
        try:
            if op == wire.OP_GET_STATS:
                body = self._run_op(op, args)
            else:
                with self._store_lock:
                    body = self._run_op(op, args)
                    if (
                        self._durability is not None
                        and op in _MUTATING_OPS
                    ):
                        self._durability.maybe_checkpoint(self.store)
        except WireProtocolError as exc:
            self._bump("protocol_errors")
            return wire.encode_error(wire.STATUS_PROTOCOL, str(exc))
        # repro-lint: disable=broad-except -- THE process boundary: any app
        # error becomes a STATUS_ERROR frame and the connection keeps serving
        except Exception as exc:  # app error: report, keep serving
            self._bump("app_errors")
            return wire.encode_error(
                wire.STATUS_ERROR, f"{type(exc).__name__}: {exc}"
            )
        return wire.encode_ok(body)

    # -- connection / accept loops ------------------------------------------

    def _serve_connection(self, conn: socket.socket) -> None:
        self._bump("connections")
        try:
            while True:
                try:
                    payload = wire.recv_frame(conn)
                except WireProtocolError as exc:
                    # broken framing: answer if the pipe still works,
                    # then give up on this connection only
                    self._bump("protocol_errors")
                    try:
                        wire.send_frame(
                            conn,
                            wire.encode_error(wire.STATUS_PROTOCOL, str(exc)),
                        )
                    except OSError:
                        pass
                    return
                if payload is None:
                    return
                response = self._handle_request(payload)
                if response is None:  # SHUTDOWN
                    try:
                        wire.send_frame(conn, wire.encode_ok())
                        conn.shutdown(socket.SHUT_WR)
                    except OSError:
                        pass
                    os._exit(0)
                wire.send_frame(conn, response)
        except OSError:
            pass  # peer vanished; the accept loop keeps running
        finally:
            try:
                conn.close()
            except OSError:
                pass

    def serve_forever(self) -> None:
        while True:
            try:
                conn, _addr = self.listener.accept()
            except OSError:
                os._exit(0)  # listener torn down
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            thread = threading.Thread(
                target=self._serve_connection, args=(conn,), daemon=True
            )
            thread.start()


def serve_entry(listener: socket.socket, engine: str,
                store_args: Optional[dict],
                data_dir: Optional[str] = None,
                fsync_policy: str = "group",
                checkpoint_interval: Optional[int] = None) -> None:
    """Child-process entry point (target of the forked ``Process``).

    With ``data_dir`` the process is crash-consistent: it *recovers*
    whatever checkpoint + WAL tail the directory holds before
    accepting connections, and write-ahead-logs every mutation — a
    SIGKILLed process respawned on the same directory comes back with
    every acked write.
    """
    store = make_engine(engine, store_args)
    durability = None
    if data_dir is not None:
        extra = (
            {}
            if checkpoint_interval is None
            else {"checkpoint_interval": checkpoint_interval}
        )
        durability = NodeDurability(
            data_dir, fsync_policy=fsync_policy, **extra
        )
        durability.open(store)
    NodeServer(listener, store, durability).serve_forever()
