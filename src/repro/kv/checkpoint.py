"""Checkpoints and crash recovery for a durable storage node.

A node's data directory holds at most one **generation** of durable
state, named by a monotonically increasing sequence number::

    data_dir/
        checkpoint-00000007      # full store snapshot (absent for seq 0)
        wal-00000007.log         # records appended since that snapshot

The **checkpoint/truncate cycle** (:meth:`NodeDurability.checkpoint`):
snapshot every live pair under the caller's store lock, write it to
``checkpoint-<seq+1>.tmp``, ``fsync``, atomically rename into place,
roll the WAL onto ``wal-<seq+1>.log``, and only then delete the old
generation — at every instant the directory holds at least one complete
recoverable state. Checkpoints fire automatically every
``checkpoint_interval`` logged records (:meth:`maybe_checkpoint`), so
the log a restart must replay stays bounded.

**Recovery** (:meth:`NodeDurability.open`): find the newest generation,
load its checkpoint (magic- and CRC-validated — a corrupt *renamed*
checkpoint is a :class:`~repro.errors.DurabilityError`, it cannot
happen under this write protocol), replay the WAL tail tolerating a
torn final record (the debris is truncated so the reopened log appends
after the last intact record), and attach the WAL to the store so new
mutations are logged again.

Checkpoint file layout::

    +-------+-----------+----------------------------+----------------+
    | magic | u64 count | count × (bytes key, value) | u32 crc32(body)|
    +-------+-----------+----------------------------+----------------+
"""

from __future__ import annotations

import os
import re
import struct
import zlib
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import DurabilityError, WireProtocolError
from repro.kv import wal as walmod
from repro.kv.wire import Reader
from repro.locks import make_lock

_U32 = struct.Struct(">I")
_U64 = struct.Struct(">Q")

CHECKPOINT_MAGIC = b"ZCKP1"

#: records logged between automatic checkpoints (the replay bound)
DEFAULT_CHECKPOINT_INTERVAL = 512

_CHECKPOINT_RE = re.compile(r"^checkpoint-(\d{8})$")
_WAL_RE = re.compile(r"^wal-(\d{8})\.log$")


def checkpoint_path(data_dir: str, seq: int) -> str:
    return os.path.join(data_dir, f"checkpoint-{seq:08d}")


def wal_path(data_dir: str, seq: int) -> str:
    return os.path.join(data_dir, f"wal-{seq:08d}.log")


# --------------------------------------------------------------------------
# checkpoint file format
# --------------------------------------------------------------------------


def write_checkpoint(
    path: str, pairs: List[Tuple[bytes, bytes]]
) -> int:
    """Write a snapshot atomically (tmp → fsync → rename); returns the
    file's size in bytes. The rename is the commit point: a crash at
    any earlier instant leaves only ignorable ``.tmp`` debris."""
    body = bytearray(_U64.pack(len(pairs)))
    for key, value in pairs:
        body += _U32.pack(len(key))
        body += key
        body += _U32.pack(len(value))
        body += value
    blob = CHECKPOINT_MAGIC + bytes(body) + _U32.pack(zlib.crc32(body))
    tmp = path + ".tmp"
    with open(tmp, "wb") as handle:
        handle.write(blob)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    _fsync_dir(os.path.dirname(path))
    return len(blob)


def read_checkpoint(path: str) -> List[Tuple[bytes, bytes]]:
    """Load and validate a snapshot; magic/CRC/shape violations raise
    :class:`DurabilityError` (a renamed checkpoint is all-or-nothing)."""
    with open(path, "rb") as handle:
        blob = handle.read()
    if not blob.startswith(CHECKPOINT_MAGIC):
        raise DurabilityError(f"{path}: bad checkpoint magic")
    if len(blob) < len(CHECKPOINT_MAGIC) + _U32.size:
        raise DurabilityError(f"{path}: truncated checkpoint")
    body = blob[len(CHECKPOINT_MAGIC):-_U32.size]
    (crc,) = _U32.unpack(blob[-_U32.size:])
    if zlib.crc32(body) != crc:
        raise DurabilityError(f"{path}: checkpoint CRC mismatch")
    reader = Reader(body)
    try:
        count = reader.u64()
        pairs = [(reader.bytes_(), reader.bytes_()) for _ in range(count)]
        reader.expect_end()
    except WireProtocolError as exc:
        raise DurabilityError(
            f"{path}: malformed checkpoint: {exc}"
        ) from exc
    return pairs


def _fsync_dir(path: str) -> None:
    """Persist a directory entry (the rename/unlink itself); best-effort
    where the platform refuses directory fds."""
    try:
        fd = os.open(path or ".", os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def latest_generation(data_dir: str) -> int:
    """The newest sequence number present on disk (0 when pristine)."""
    seq = 0
    try:
        names = os.listdir(data_dir)
    except FileNotFoundError:
        return 0
    for name in names:
        match = _CHECKPOINT_RE.match(name) or _WAL_RE.match(name)
        if match:
            seq = max(seq, int(match.group(1)))
    return seq


# --------------------------------------------------------------------------
# the per-node durability manager
# --------------------------------------------------------------------------


@dataclass
class RecoveryReport:
    """What one :meth:`NodeDurability.open` rebuilt."""

    #: generation recovered from (0 = pristine directory)
    seq: int = 0
    #: pairs loaded from the checkpoint file
    checkpoint_pairs: int = 0
    #: WAL records replayed over the checkpoint
    records_replayed: int = 0
    #: a torn/corrupt final record was discarded (and truncated away)
    torn_tail: bool = False
    #: WAL debris bytes truncated
    bytes_truncated: int = 0

    def __str__(self) -> str:
        out = (
            f"recovered gen {self.seq}: {self.checkpoint_pairs} "
            f"checkpoint pairs + {self.records_replayed} WAL records"
        )
        if self.torn_tail:
            out += f" (torn tail: {self.bytes_truncated}B discarded)"
        return out


class NodeDurability:
    """Owns one node's data directory: WAL lifecycle + checkpoints.

    The store-mutating entry points (:meth:`open`, :meth:`checkpoint`,
    :meth:`maybe_checkpoint`) must be called with the caller's store
    serialized (the node's ``_op_lock`` / the server's ``_store_lock``)
    — the internal mutex only guards this object's own sequencing
    state, so checkpoint bookkeeping stays consistent even if a caller
    slips.
    """

    def __init__(
        self,
        data_dir: str,
        fsync_policy: str = "group",
        group_size: int = walmod.DEFAULT_GROUP_SIZE,
        checkpoint_interval: int = DEFAULT_CHECKPOINT_INTERVAL,
    ) -> None:
        walmod.validate_fsync_policy(fsync_policy)
        if checkpoint_interval <= 0:
            raise ValueError("checkpoint_interval must be positive")
        os.makedirs(data_dir, exist_ok=True)
        self.data_dir = data_dir
        self.fsync_policy = fsync_policy
        self.group_size = group_size
        self.checkpoint_interval = checkpoint_interval
        self._lock = make_lock("NodeDurability._lock")
        self._wal: Optional[walmod.WriteAheadLog] = None
        self._seq = 0
        #: WAL record count at the last checkpoint (per WAL object)
        self._records_at_checkpoint = 0
        self.last_recovery: Optional[RecoveryReport] = None

    @property
    def wal(self) -> Optional[walmod.WriteAheadLog]:
        with self._lock:
            return self._wal

    @property
    def seq(self) -> int:
        with self._lock:
            return self._seq

    def wal_stats(self) -> Dict[str, int]:
        """The live WAL's counters (zeros before :meth:`open`)."""
        with self._lock:
            if self._wal is None:
                return {"records": 0, "bytes": 0, "fsyncs": 0, "rolls": 0}
            return self._wal.stats

    # -- recovery -----------------------------------------------------------

    def open(self, store: Any) -> RecoveryReport:
        """Rebuild ``store`` from disk, then attach the WAL to it.

        Replays checkpoint + log tail of the newest generation into the
        (assumed empty) store, truncates any torn tail so the log can
        keep appending after the last intact record, and hooks the
        store's mutators up to the reopened WAL. Reentrant across
        crash/restart cycles: an earlier abandoned WAL handle is simply
        superseded.
        """
        report = RecoveryReport()
        with self._lock:
            seq = latest_generation(self.data_dir)
            report.seq = seq
            ckpt = checkpoint_path(self.data_dir, seq)
            if os.path.exists(ckpt):
                pairs = read_checkpoint(ckpt)
                if pairs:
                    store.multi_put(pairs)
                report.checkpoint_pairs = len(pairs)
            log_path = wal_path(self.data_dir, seq)
            records, valid_bytes, torn = walmod.read_wal(log_path)
            for op, args in records:
                walmod.apply_record(store, op, args)
            report.records_replayed = len(records)
            if torn:
                report.torn_tail = True
                report.bytes_truncated = (
                    os.path.getsize(log_path) - valid_bytes
                )
                os.truncate(log_path, valid_bytes)
            self._seq = seq
            self._wal = walmod.WriteAheadLog(
                log_path,
                fsync_policy=self.fsync_policy,
                group_size=self.group_size,
            )
            self._records_at_checkpoint = 0
            self.last_recovery = report
        store.attach_wal(self._wal)
        # a long log was replayed whole: fold it into a fresh checkpoint
        # now so the *next* restart replays a bounded tail again
        if report.records_replayed >= self.checkpoint_interval:
            self.checkpoint(store)
        return report

    # -- the checkpoint/truncate cycle --------------------------------------

    def maybe_checkpoint(self, store: Any) -> bool:
        """Checkpoint iff ``checkpoint_interval`` records accumulated
        since the last one; returns whether it did."""
        with self._lock:
            if self._wal is None:
                return False
            appended = (
                self._wal.stats["records"] - self._records_at_checkpoint
            )
            if appended < self.checkpoint_interval:
                return False
            self._checkpoint_locked(store)
            return True

    def checkpoint(self, store: Any) -> None:
        """Snapshot the store and truncate the log (see module docs)."""
        with self._lock:
            self._checkpoint_locked(store)

    def _checkpoint_locked(self, store: Any) -> None:
        # repro-lint: holds=_lock
        wal_log = self._wal
        if wal_log is None:  # callers checked; keeps the path total
            raise ValueError("NodeDurability.checkpoint() before open()")
        new_seq = self._seq + 1
        write_checkpoint(
            checkpoint_path(self.data_dir, new_seq), list(store.scan())
        )
        # the snapshot is durably committed: group-commit debt up to
        # here is covered by it, so the old log can go
        wal_log.roll(wal_path(self.data_dir, new_seq))
        for stale in (
            checkpoint_path(self.data_dir, self._seq),
            wal_path(self.data_dir, self._seq),
        ):
            try:
                os.remove(stale)
            except FileNotFoundError:
                pass
        _fsync_dir(self.data_dir)
        self._seq = new_seq
        self._records_at_checkpoint = wal_log.stats["records"]

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        """Sync and close the WAL (orderly shutdown). Idempotent."""
        with self._lock:
            if self._wal is not None:
                self._wal.close()

    def abandon(self) -> None:
        """Simulate the node process dying: drop the WAL handle without
        the close-time sync. The on-disk state is exactly what a
        SIGKILL would leave; :meth:`open` recovers from it."""
        with self._lock:
            if self._wal is not None:
                self._wal.abandon()

    def __repr__(self) -> str:
        with self._lock:
            return (
                f"NodeDurability({self.data_dir!r}, gen={self._seq}, "
                f"policy={self.fsync_policy})"
            )
