"""A single-node byte-oriented KV store with get / put / delete / next.

This models the per-node storage engine of a KV system (§3): a dictionary
of byte keys to byte values, plus an iterator ``next()`` that walks keys in
deterministic (sorted raw-byte) order, which is how table scans are driven
in SQL-over-NoSQL systems ("invoking get operations with keys extracted
via next()").
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.kv import wal as walmod


def prefix_upper_bound(prefix: bytes) -> Optional[bytes]:
    """The smallest byte string greater than every key with ``prefix``
    (``None`` when no upper bound exists, i.e. the prefix is empty or
    all ``0xff``). Lets sorted stores answer prefix scans with two
    binary searches instead of filtering every key."""
    for i in range(len(prefix) - 1, -1, -1):
        if prefix[i] != 0xFF:
            return prefix[:i] + bytes((prefix[i] + 1,))
    return None


class MemStore:
    """An in-memory KV store for one storage node.

    Keys and values are ``bytes``. Key iteration is in sorted byte order and
    is computed lazily: the sorted key list is invalidated on writes and
    rebuilt on demand, which keeps bulk loading O(n) and scans O(n log n)
    once per write epoch.

    Durability hook (PR 8): :meth:`attach_wal` hands the store a
    :class:`~repro.kv.wal.WriteAheadLog`; every public mutation then
    logs exactly one record *before* it is applied (batch operations
    log one batch record, suspending the per-key inner logging), so
    replaying the log over the last checkpoint rebuilds the store
    byte-for-byte. Without a WAL attached the store is purely volatile,
    exactly as before.
    """

    __slots__ = ("_data", "_sorted_keys", "_dirty", "_wal", "_wal_depth")

    def __init__(self) -> None:
        self._data: Dict[bytes, bytes] = {}
        self._sorted_keys: List[bytes] = []
        self._dirty = False
        self._wal: Optional[walmod.WriteAheadLog] = None
        #: >0 while inside a batch op that already logged its one record
        self._wal_depth = 0

    # -- durability hook ----------------------------------------------------

    def attach_wal(self, wal: Optional[walmod.WriteAheadLog]) -> None:
        """Log every subsequent mutation to ``wal`` (``None`` detaches).

        Recovery replays *before* attaching, so replay never re-logs
        its own input.
        """
        self._wal = wal

    def _wal_log(self, op: int, *args: object) -> bool:
        """Append one record if a WAL is attached and no enclosing batch
        operation already logged; returns whether it logged."""
        if self._wal is None or self._wal_depth:
            return False
        self._wal.append(op, *args)
        return True

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: bytes) -> bool:
        return key in self._data

    def get(self, key: bytes) -> Optional[bytes]:
        """Return the value for ``key`` or ``None`` if absent."""
        return self._data.get(key)

    def multi_get(self, keys: Sequence[bytes]) -> List[Optional[bytes]]:
        """Batched lookup: one value (or ``None``) per key, in key order."""
        data = self._data
        return [data.get(key) for key in keys]

    def put(self, key: bytes, value: bytes) -> None:
        self._wal_log(walmod.WAL_PUT, key, value)
        if key not in self._data:
            self._dirty = True
        self._data[key] = value

    def multi_put(self, items: Sequence[Tuple[bytes, bytes]]) -> None:
        """Batched write of (key, value) pairs (ONE WAL record)."""
        items = list(items)
        logged = self._wal_log(walmod.WAL_MULTI_PUT, items)
        self._wal_depth += 1 if logged else 0
        try:
            for key, value in items:
                self.put(key, value)
        finally:
            self._wal_depth -= 1 if logged else 0

    def delete(self, key: bytes) -> bool:
        """Delete ``key``; return True if it was present."""
        self._wal_log(walmod.WAL_DELETE, key)
        if key in self._data:
            del self._data[key]
            self._dirty = True
            return True
        return False

    def multi_delete(self, keys: Sequence[bytes]) -> int:
        """Batched delete; returns how many keys were present."""
        keys = list(keys)
        logged = self._wal_log(walmod.WAL_MULTI_DELETE, keys)
        self._wal_depth += 1 if logged else 0
        try:
            removed = 0
            for key in keys:
                if self.delete(key):
                    removed += 1
            return removed
        finally:
            self._wal_depth -= 1 if logged else 0

    def _refresh(self) -> None:
        if self._dirty or len(self._sorted_keys) != len(self._data):
            self._sorted_keys = sorted(self._data)
            self._dirty = False

    def keys(self) -> List[bytes]:
        """All keys in sorted byte order."""
        self._refresh()
        return list(self._sorted_keys)

    def next_key(self, after: Optional[bytes] = None) -> Optional[bytes]:
        """The ``next()`` primitive of §3: iterate keys in order.

        ``after=None`` returns the first key; otherwise the smallest key
        strictly greater than ``after``; ``None`` when exhausted.
        """
        self._refresh()
        keys = self._sorted_keys
        if not keys:
            return None
        if after is None:
            return keys[0]
        lo, hi = 0, len(keys)
        while lo < hi:
            mid = (lo + hi) // 2
            if keys[mid] <= after:
                lo = mid + 1
            else:
                hi = mid
        return keys[lo] if lo < len(keys) else None

    def _prefix_range(self, prefix: bytes) -> Tuple[int, int]:
        """``[lo, hi)`` slice of the sorted-key cache carrying ``prefix``
        (two binary searches — O(log n + matches), not a full filter)."""
        self._refresh()
        if not prefix:
            return 0, len(self._sorted_keys)
        lo = bisect_left(self._sorted_keys, prefix)
        upper = prefix_upper_bound(prefix)
        hi = (
            len(self._sorted_keys)
            if upper is None
            else bisect_left(self._sorted_keys, upper, lo)
        )
        return lo, hi

    def scan(self, prefix: bytes = b"") -> Iterator[Tuple[bytes, bytes]]:
        """Yield (key, value) pairs with the given key prefix, in order."""
        lo, hi = self._prefix_range(prefix)
        for key in self._sorted_keys[lo:hi]:
            yield key, self._data[key]

    def drop_prefix(self, prefix: bytes = b"") -> List[bytes]:
        """Delete every key carrying ``prefix``; return the dropped keys
        (one bulk operation, so a remote namespace drop is one frame —
        and one WAL record, replayed as the same prefix drop)."""
        lo, hi = self._prefix_range(prefix)
        doomed = self._sorted_keys[lo:hi]
        if doomed:
            self._wal_log(walmod.WAL_DROP_PREFIX, prefix)
            for key in doomed:
                del self._data[key]
            self._dirty = True
        return doomed

    def size_bytes(self) -> int:
        """Total stored payload size (keys + values)."""
        return sum(len(k) + len(v) for k, v in self._data.items())

    def clear(self) -> None:
        """Reset to the freshly-constructed state (contents and caches)."""
        self._wal_log(walmod.WAL_CLEAR)
        self._data.clear()
        self._sorted_keys = []
        self._dirty = False
