"""A single-node byte-oriented KV store with get / put / delete / next.

This models the per-node storage engine of a KV system (§3): a dictionary
of byte keys to byte values, plus an iterator ``next()`` that walks keys in
deterministic (sorted raw-byte) order, which is how table scans are driven
in SQL-over-NoSQL systems ("invoking get operations with keys extracted
via next()").
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, Iterator, List, Optional, Sequence, Tuple


def prefix_upper_bound(prefix: bytes) -> Optional[bytes]:
    """The smallest byte string greater than every key with ``prefix``
    (``None`` when no upper bound exists, i.e. the prefix is empty or
    all ``0xff``). Lets sorted stores answer prefix scans with two
    binary searches instead of filtering every key."""
    for i in range(len(prefix) - 1, -1, -1):
        if prefix[i] != 0xFF:
            return prefix[:i] + bytes((prefix[i] + 1,))
    return None


class MemStore:
    """An in-memory KV store for one storage node.

    Keys and values are ``bytes``. Key iteration is in sorted byte order and
    is computed lazily: the sorted key list is invalidated on writes and
    rebuilt on demand, which keeps bulk loading O(n) and scans O(n log n)
    once per write epoch.
    """

    __slots__ = ("_data", "_sorted_keys", "_dirty")

    def __init__(self) -> None:
        self._data: Dict[bytes, bytes] = {}
        self._sorted_keys: List[bytes] = []
        self._dirty = False

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: bytes) -> bool:
        return key in self._data

    def get(self, key: bytes) -> Optional[bytes]:
        """Return the value for ``key`` or ``None`` if absent."""
        return self._data.get(key)

    def multi_get(self, keys: Sequence[bytes]) -> List[Optional[bytes]]:
        """Batched lookup: one value (or ``None``) per key, in key order."""
        data = self._data
        return [data.get(key) for key in keys]

    def put(self, key: bytes, value: bytes) -> None:
        if key not in self._data:
            self._dirty = True
        self._data[key] = value

    def multi_put(self, items: Sequence[Tuple[bytes, bytes]]) -> None:
        """Batched write of (key, value) pairs."""
        for key, value in items:
            self.put(key, value)

    def delete(self, key: bytes) -> bool:
        """Delete ``key``; return True if it was present."""
        if key in self._data:
            del self._data[key]
            self._dirty = True
            return True
        return False

    def multi_delete(self, keys: Sequence[bytes]) -> int:
        """Batched delete; returns how many keys were present."""
        removed = 0
        for key in keys:
            if self.delete(key):
                removed += 1
        return removed

    def _refresh(self) -> None:
        if self._dirty or len(self._sorted_keys) != len(self._data):
            self._sorted_keys = sorted(self._data)
            self._dirty = False

    def keys(self) -> List[bytes]:
        """All keys in sorted byte order."""
        self._refresh()
        return list(self._sorted_keys)

    def next_key(self, after: Optional[bytes] = None) -> Optional[bytes]:
        """The ``next()`` primitive of §3: iterate keys in order.

        ``after=None`` returns the first key; otherwise the smallest key
        strictly greater than ``after``; ``None`` when exhausted.
        """
        self._refresh()
        keys = self._sorted_keys
        if not keys:
            return None
        if after is None:
            return keys[0]
        lo, hi = 0, len(keys)
        while lo < hi:
            mid = (lo + hi) // 2
            if keys[mid] <= after:
                lo = mid + 1
            else:
                hi = mid
        return keys[lo] if lo < len(keys) else None

    def _prefix_range(self, prefix: bytes) -> Tuple[int, int]:
        """``[lo, hi)`` slice of the sorted-key cache carrying ``prefix``
        (two binary searches — O(log n + matches), not a full filter)."""
        self._refresh()
        if not prefix:
            return 0, len(self._sorted_keys)
        lo = bisect_left(self._sorted_keys, prefix)
        upper = prefix_upper_bound(prefix)
        hi = (
            len(self._sorted_keys)
            if upper is None
            else bisect_left(self._sorted_keys, upper, lo)
        )
        return lo, hi

    def scan(self, prefix: bytes = b"") -> Iterator[Tuple[bytes, bytes]]:
        """Yield (key, value) pairs with the given key prefix, in order."""
        lo, hi = self._prefix_range(prefix)
        for key in self._sorted_keys[lo:hi]:
            yield key, self._data[key]

    def drop_prefix(self, prefix: bytes = b"") -> List[bytes]:
        """Delete every key carrying ``prefix``; return the dropped keys
        (one bulk operation, so a remote namespace drop is one frame)."""
        lo, hi = self._prefix_range(prefix)
        doomed = self._sorted_keys[lo:hi]
        for key in doomed:
            del self._data[key]
        if doomed:
            self._dirty = True
        return doomed

    def size_bytes(self) -> int:
        """Total stored payload size (keys + values)."""
        return sum(len(k) + len(v) for k, v in self._data.items())

    def clear(self) -> None:
        self._data.clear()
        self._sorted_keys = []
        self._dirty = False
