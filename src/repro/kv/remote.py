"""Client side of the socket transport: node processes and their proxies.

Three layers, composed bottom-up:

* :class:`NodeProcess` — forks one :mod:`repro.kv.server` loop into its
  own OS process. The parent binds the listener on ``127.0.0.1:0``
  *before* forking (the kernel picks a free ephemeral port, so parallel
  test runs never race on port numbers) and hands the bound socket to
  the child; the child inherits it and serves, the parent closes its
  copy and keeps only the port number.
* :class:`NodeClient` — a pooled, lock-step framed-RPC client. One
  request, one response; ``OSError`` / unexpected EOF anywhere maps to
  :class:`~repro.errors.NodePeerError` (the cluster's failover signal),
  a ``STATUS_ERROR`` frame to :class:`~repro.errors.RemoteOpError`, and
  a ``STATUS_PROTOCOL`` frame to :class:`~repro.errors.WireProtocolError`.
* :class:`RemoteStore` — duck-types the raw-store surface
  (:class:`~repro.kv.memstore.MemStore` et al.) over the client, so
  :class:`RemoteNode` can *inherit* every counting method body from
  :class:`~repro.kv.node.StorageNode` unchanged. Counters therefore
  live client-side and are byte-identical across transports.

Every spawned process is tracked in a module registry;
:func:`reap_orphans` (called by the test session teardown) terminates
anything a crashed or careless caller left behind. Children are daemonic
besides, so no interpreter exit can hang on them.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import socket
import threading
import weakref
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import NodePeerError, RemoteOpError, WireProtocolError
from repro.kv import wal as walmod
from repro.kv import wire
from repro.kv.node import StorageNode
from repro.kv.server import make_engine, serve_entry
from repro.locks import make_lock

#: live NodeProcess instances, for orphan reaping at session teardown
_PROCESS_REGISTRY: "weakref.WeakSet[NodeProcess]" = weakref.WeakSet()
_REGISTRY_LOCK = make_lock("remote._REGISTRY_LOCK")

_CONNECT_TIMEOUT = 5.0
#: generous per-request ceiling — a hung peer must surface as a
#: NodePeerError, never as a silently stuck test suite
_REQUEST_TIMEOUT = 120.0


def reap_orphans() -> int:
    """Terminate every still-live node process; returns how many."""
    with _REGISTRY_LOCK:
        procs = list(_PROCESS_REGISTRY)
    reaped = 0
    for proc in procs:
        if proc.alive:
            proc.kill()
            reaped += 1
    return reaped


class NodeProcess:
    """One storage-node server running in its own OS process.

    With ``data_dir`` the server write-ahead-logs into that directory
    and :meth:`respawn` becomes *recovery*: the fresh process replays
    checkpoint + WAL tail before accepting connections, so a SIGKILL
    loses nothing that was acked.
    """

    def __init__(self, node_id: int, engine: str = "mem",
                 store_args: Optional[dict] = None,
                 data_dir: Optional[str] = None,
                 fsync_policy: str = "group",
                 checkpoint_interval: Optional[int] = None) -> None:
        # validate BEFORE spawning so a bad engine name / fsync policy
        # raises the same error, in the same place, as the in-process node
        make_engine(engine, store_args)
        walmod.validate_fsync_policy(fsync_policy)
        self.node_id = node_id
        self.engine = engine
        self.store_args = dict(store_args) if store_args else None
        self.data_dir = data_dir
        self.fsync_policy = fsync_policy
        self.checkpoint_interval = checkpoint_interval
        self.port: int = 0
        self.process: Optional[multiprocessing.process.BaseProcess] = None
        self._spawn()
        with _REGISTRY_LOCK:
            _PROCESS_REGISTRY.add(self)

    def _spawn(self) -> None:
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind(("127.0.0.1", 0))
        listener.listen(128)
        self.port = listener.getsockname()[1]
        ctx = multiprocessing.get_context("fork")
        self.process = ctx.Process(
            target=serve_entry,
            args=(
                listener, self.engine, self.store_args,
                self.data_dir, self.fsync_policy, self.checkpoint_interval,
            ),
            daemon=True,
            name=f"kv-node-{self.node_id}",
        )
        self.process.start()
        listener.close()  # the child keeps its inherited copy

    def respawn(self) -> None:
        """Start a fresh server process on a fresh port: empty for a
        volatile node, recovered-by-replay when ``data_dir`` is set
        (the new process reopens the same directory)."""
        self.kill()
        self._spawn()

    @property
    def pid(self) -> Optional[int]:
        return self.process.pid if self.process is not None else None

    @property
    def alive(self) -> bool:
        return self.process is not None and self.process.is_alive()

    def sigkill(self) -> None:
        """Hard-kill the process (the fault injector's hammer)."""
        if self.process is not None and self.process.pid is not None:
            try:
                os.kill(self.process.pid, signal.SIGKILL)
            except (OSError, ProcessLookupError):
                pass
            self.process.join(timeout=10)

    def kill(self) -> None:
        """Terminate and join the process (idempotent)."""
        if self.process is None:
            return
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout=10)
            if self.process.is_alive():
                self.sigkill()
        else:
            self.process.join(timeout=1)

    def __repr__(self) -> str:
        state = "up" if self.alive else "down"
        return (
            f"NodeProcess(id={self.node_id}, pid={self.pid}, "
            f"port={self.port}, {state})"
        )


class NodeClient:
    """Framed-RPC client with a small per-client connection pool.

    Requests are lock-step (send one frame, read one frame), so a
    connection is exclusive while a request is in flight; concurrent
    callers either grab a pooled idle connection or open a new one.
    """

    def __init__(self, node_id: int, port: int, pool_size: int = 4) -> None:
        self.node_id = node_id
        self.port = port
        self._pool: List[socket.socket] = []
        self._pool_size = pool_size
        self._lock = make_lock("NodeClient._lock")
        self._closed = False

    # -- connection management ----------------------------------------------

    def _connect(self) -> socket.socket:
        try:
            sock = socket.create_connection(
                ("127.0.0.1", self.port), timeout=_CONNECT_TIMEOUT
            )
        except OSError as exc:
            raise NodePeerError(self.node_id, f"connect failed: {exc}")
        sock.settimeout(_REQUEST_TIMEOUT)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return sock

    def _checkout(self) -> socket.socket:
        with self._lock:
            if self._closed:
                raise NodePeerError(self.node_id, "client closed")
            if self._pool:
                return self._pool.pop()
        return self._connect()

    def _checkin(self, sock: socket.socket) -> None:
        with self._lock:
            if not self._closed and len(self._pool) < self._pool_size:
                self._pool.append(sock)
                return
        try:
            sock.close()
        except OSError:
            pass

    def close(self) -> None:
        with self._lock:
            self._closed = True
            pool, self._pool = self._pool, []
        for sock in pool:
            try:
                sock.close()
            except OSError:
                pass

    # -- the RPC ------------------------------------------------------------

    def request(self, op: int, *args: object) -> bytes:
        """One request → the OK body, or a mapped exception."""
        payload = wire.encode_request(op, *args)
        sock = self._checkout()
        try:
            wire.send_frame(sock, payload)
            response = wire.recv_frame(sock)
        except WireProtocolError as exc:
            # stream died mid-frame: unreachable peer, not a codec bug
            try:
                sock.close()
            except OSError:
                pass
            raise NodePeerError(self.node_id, str(exc))
        except OSError as exc:
            try:
                sock.close()
            except OSError:
                pass
            raise NodePeerError(self.node_id, f"i/o failed: {exc}")
        if response is None:
            try:
                sock.close()
            except OSError:
                pass
            raise NodePeerError(self.node_id, "peer closed without answering")
        status, body = wire.decode_response(response)
        if status == wire.STATUS_OK:
            self._checkin(sock)
            return body
        # error frames leave the connection reusable
        self._checkin(sock)
        message = wire.decode_error_message(body)
        if status == wire.STATUS_ERROR:
            raise RemoteOpError(message)
        if status == wire.STATUS_PROTOCOL:
            raise WireProtocolError(message)
        raise WireProtocolError(f"unknown response status {status:#x}")

    def ping(self) -> bool:
        self.request(wire.OP_PING)
        return True


class RemoteStore:
    """The raw-store surface, served by a node process over sockets.

    Mirrors :class:`~repro.kv.memstore.MemStore` closely enough that
    :class:`~repro.kv.node.StorageNode` (and the cluster's rebalance
    path) can use it blind. ``scan`` materializes server-side and
    returns an iterator over the shipped pairs — one frame per scan.
    """

    __slots__ = ("client",)

    def __init__(self, client: NodeClient) -> None:
        self.client = client

    def get(self, key: bytes) -> Optional[bytes]:
        return self.multi_get([key])[0]

    def multi_get(self, keys: Sequence[bytes]) -> List[Optional[bytes]]:
        return wire.decode_values(
            self.client.request(wire.OP_MULTI_GET, list(keys))
        )

    def put(self, key: bytes, value: bytes) -> None:
        self.multi_put([(key, value)])

    def multi_put(self, items: Sequence[Tuple[bytes, bytes]]) -> None:
        self.client.request(wire.OP_MULTI_PUT, list(items))

    def delete(self, key: bytes) -> bool:
        return wire.decode_bool(self.client.request(wire.OP_DELETE, key))

    def multi_delete(self, keys: Sequence[bytes]) -> int:
        return wire.decode_u64(
            self.client.request(wire.OP_MULTI_DELETE, list(keys))
        )

    def scan(self, prefix: bytes = b"") -> Iterator[Tuple[bytes, bytes]]:
        return iter(
            wire.decode_pairs(self.client.request(wire.OP_SCAN, prefix))
        )

    def keys(self) -> List[bytes]:
        return wire.decode_keys(self.client.request(wire.OP_KEYS, b""))

    def next_key(self, after: Optional[bytes] = None) -> Optional[bytes]:
        return wire.decode_opt_key(
            self.client.request(wire.OP_NEXT_KEY, after)
        )

    def drop_prefix(self, prefix: bytes = b"") -> List[bytes]:
        return wire.decode_keys(
            self.client.request(wire.OP_DROP_PREFIX, prefix)
        )

    def size_bytes(self) -> int:
        return wire.decode_u64(self.client.request(wire.OP_SIZE_BYTES))

    def clear(self) -> None:
        self.client.request(wire.OP_CLEAR)

    def __len__(self) -> int:
        return wire.decode_u64(self.client.request(wire.OP_COUNT))

    def __contains__(self, key: bytes) -> bool:
        return self.multi_get([key])[0] is not None


class _NullLock:
    """Stand-in for the per-node op mutex: a remote node's server
    serializes store access itself, so the client holds nothing."""

    __slots__ = ()

    def __enter__(self) -> "_NullLock":
        return self

    def __exit__(self, *exc: object) -> None:
        return None


class RemoteNode(StorageNode):
    """A :class:`StorageNode` whose store lives in another OS process.

    Inherits every KV method — and with them the exact counter
    semantics — from the in-process node; only the store is swapped for
    a :class:`RemoteStore` and the op mutex for a no-op (the server
    serializes). The per-thread counter shards, read-load signal and
    stats aggregation are therefore *identical* across transports.
    """

    __slots__ = ("process", "client")

    def __init__(self, node_id: int, engine: str = "mem",
                 store_args: Optional[dict] = None,
                 data_dir: Optional[str] = None,
                 fsync_policy: str = "group",
                 checkpoint_interval: Optional[int] = None) -> None:
        process = NodeProcess(
            node_id, engine, store_args,
            data_dir=data_dir,
            fsync_policy=fsync_policy,
            checkpoint_interval=checkpoint_interval,
        )
        client = NodeClient(node_id, process.port)
        # durability (when any) lives server-side in the node process;
        # the client-side facade stays volatile by construction
        super().__init__(node_id, engine, store=RemoteStore(client))
        self.process = process
        self.client = client
        self._op_lock = _NullLock()

    # -- durability / crash surface ------------------------------------------

    @property
    def durable(self) -> bool:
        """Does the node process write-ahead-log to a data directory?"""
        return self.process.data_dir is not None

    @property
    def is_crashed(self) -> bool:
        """Crash state is the process state: dead means crashed."""
        return not self.process.alive

    def wal_stats(self) -> Dict[str, int]:
        """The server process's WAL counters (empty for volatile nodes)."""
        if not self.durable:
            return {}
        return {
            key[len("wal_"):]: value
            for key, value in self.server_stats().items()
            if key.startswith("wal_")
        }

    def crash(self) -> bool:
        """SIGKILL the node process — the real thing, not a simulation.
        Always honors crash semantics (returns True)."""
        self.client.close()
        self.process.sigkill()
        return True

    # -- transport-specific surface ------------------------------------------

    def has_prefix(self, prefix: bytes = b"") -> bool:
        """Server-side probe (one tiny frame, not a shipped scan)."""
        return wire.decode_bool(
            self.client.request(wire.OP_HAS_PREFIX, prefix)
        )

    def server_stats(self) -> Dict[str, int]:
        """The server process's own request/error/connection counters."""
        return wire.decode_stats(self.client.request(wire.OP_GET_STATS))

    def shutdown(self) -> None:
        """Graceful stop: SHUTDOWN frame, then reap the process."""
        try:
            self.client.request(wire.OP_SHUTDOWN)
        except (NodePeerError, RemoteOpError):
            pass
        self.close()

    def close(self) -> None:
        """Drop the connection pool and terminate the process."""
        self.client.close()
        self.process.kill()

    def restart(self) -> None:
        """Respawn the server process and repoint the client at its new
        port. A volatile node comes back EMPTY (its contents died with
        the old process); a durable one recovers by checkpoint + WAL
        replay before it accepts the first connection. Counters are
        client-side and survive either way."""
        self.client.close()
        self.process.respawn()
        self.client = NodeClient(self.node_id, self.process.port)
        self.store = RemoteStore(self.client)

    def __repr__(self) -> str:
        state = "up" if self.process.alive else "down"
        return (
            f"RemoteNode(id={self.node_id}, pid={self.process.pid}, "
            f"port={self.process.port}, {state})"
        )
