"""Client-side read-through block cache for the KV stack.

Real deployments of the substrates the paper models put a block cache in
front of the store (HBase's BlockCache, Cassandra's row/key caches); an
HTAP stack's analytic path lives or dies on how well hot data stays close
to compute. This module provides that layer for the repro:

* :class:`BlockCache` — a byte-capacity LRU over ``(namespace,
  key_bytes) → payload bytes``, with hit / miss / eviction / bytes
  statistics;
* :class:`PartitionedBlockCache` — per-worker caches matching the
  per-worker partitions of the parallel engine: keys are routed to one
  sub-cache by a stable hash, so the same worker owns the same keys
  across queries (no cross-worker sharing, as on a real cluster);
* :func:`make_cache` — the knob-to-cache factory used by the systems.

The cache is **read-through** and **write-invalidated**: readers
(:class:`repro.baav.store.KVInstance`, :class:`repro.kv.taav.TaaVRelation`)
consult it before the cluster and fill it on miss; every write routed
through :class:`repro.kv.cluster.KVCluster` (``put`` / ``multi_put`` /
``delete`` / ``drop_namespace``) invalidates the touched keys in every
cache registered with the cluster. Cached payloads are raw bytes — value
objects are re-decoded per read — so there is no aliasing between cached
state and caller-mutated blocks.

Cache hits never reach a storage node: :class:`~repro.kv.node.NodeCounters`
stay honest and a hit costs zero round trips in the cost model, which is
exactly the speedup the caching benchmark measures. Blind scans
(``KVCluster.scan``) bypass the cache entirely — they stream every pair
anyway and would only evict the hot point-read set.
"""

from __future__ import annotations

import zlib
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union


@dataclass
class CacheStats:
    """Cumulative statistics of one cache (or an aggregate of several)."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0
    insertions: int = 0
    bytes_cached: int = 0    # current resident payload bytes
    bytes_served: int = 0    # cumulative payload bytes served from hits

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hits over lookups; 0.0 when the cache was never consulted."""
        lookups = self.lookups
        return self.hits / lookups if lookups else 0.0

    def add(self, other: "CacheStats") -> None:
        self.hits += other.hits
        self.misses += other.misses
        self.evictions += other.evictions
        self.invalidations += other.invalidations
        self.insertions += other.insertions
        self.bytes_cached += other.bytes_cached
        self.bytes_served += other.bytes_served

    def __str__(self) -> str:
        return (
            f"hits={self.hits} misses={self.misses} "
            f"rate={self.hit_rate:.1%} evictions={self.evictions} "
            f"cached={self.bytes_cached}B"
        )


#: accounted per-entry bookkeeping overhead (dict slot, key tuple) so a
#: cache of many tiny values cannot pretend to be free
ENTRY_OVERHEAD_BYTES = 64

_CacheKey = Tuple[str, bytes]


class BlockCache:
    """A byte-capacity LRU cache of ``(namespace, key_bytes) → payload``.

    ``capacity_bytes`` bounds the sum of entry charges (key + payload +
    :data:`ENTRY_OVERHEAD_BYTES`); least-recently-used entries are
    evicted when an insertion exceeds it. A payload larger than the whole
    capacity is never admitted (it would only flush the cache for one
    use). Absent keys are not cached — a read miss on a missing key
    always reaches the cluster.
    """

    def __init__(self, capacity_bytes: int) -> None:
        if capacity_bytes <= 0:
            raise ValueError("capacity_bytes must be positive")
        self.capacity_bytes = capacity_bytes
        self._entries: "OrderedDict[_CacheKey, bytes]" = OrderedDict()
        self.stats = CacheStats()

    # -- read path --------------------------------------------------------

    def get(self, namespace: str, key_bytes: bytes) -> Optional[bytes]:
        """Return the cached payload or ``None``; counts a hit or miss."""
        entry = self._entries.get((namespace, key_bytes))
        if entry is None:
            self.stats.misses += 1
            return None
        self._entries.move_to_end((namespace, key_bytes))
        self.stats.hits += 1
        self.stats.bytes_served += len(entry)
        return entry

    def peek(self, namespace: str, key_bytes: bytes) -> Optional[bytes]:
        """Uncounted, LRU-neutral read (tests and introspection)."""
        return self._entries.get((namespace, key_bytes))

    # -- fill / invalidate -------------------------------------------------

    @staticmethod
    def _charge(key: _CacheKey, payload: bytes) -> int:
        return len(key[0]) + len(key[1]) + len(payload) + ENTRY_OVERHEAD_BYTES

    def put(self, namespace: str, key_bytes: bytes, payload: bytes) -> None:
        """Fill on read-miss (and refresh on re-fill); evicts LRU to fit."""
        key = (namespace, key_bytes)
        charge = self._charge(key, payload)
        if charge > self.capacity_bytes:
            return
        old = self._entries.pop(key, None)
        if old is not None:
            self.stats.bytes_cached -= self._charge(key, old)
        while (
            self._entries
            and self.stats.bytes_cached + charge > self.capacity_bytes
        ):
            evicted_key, evicted = self._entries.popitem(last=False)
            self.stats.bytes_cached -= self._charge(evicted_key, evicted)
            self.stats.evictions += 1
        self._entries[key] = payload
        self.stats.bytes_cached += charge
        self.stats.insertions += 1

    def invalidate(self, namespace: str, key_bytes: bytes) -> bool:
        """Drop one entry (a write touched it); True if it was cached."""
        entry = self._entries.pop((namespace, key_bytes), None)
        if entry is None:
            return False
        self.stats.bytes_cached -= self._charge((namespace, key_bytes), entry)
        self.stats.invalidations += 1
        return True

    def invalidate_namespace(self, namespace: str) -> int:
        """Drop every entry of a namespace (``drop_namespace``)."""
        doomed = [k for k in self._entries if k[0] == namespace]
        for key in doomed:
            entry = self._entries.pop(key)
            self.stats.bytes_cached -= self._charge(key, entry)
        self.stats.invalidations += len(doomed)
        return len(doomed)

    def clear(self) -> None:
        self._entries.clear()
        self.stats.bytes_cached = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:
        return (
            f"BlockCache(entries={len(self._entries)}, "
            f"{self.stats.bytes_cached}/{self.capacity_bytes}B)"
        )


class PartitionedBlockCache:
    """Per-worker block caches matching per-worker partitions.

    The parallel engine's ``p`` workers each keep a private cache of the
    keys they own; a key's owner is a stable hash of ``(namespace,
    key_bytes)``, so the same worker serves the same keys across queries
    — repeat hits accrue per worker without modeling a shared cache the
    real deployment would not have. Capacity is split evenly.
    """

    def __init__(self, capacity_bytes: int, partitions: int) -> None:
        if partitions <= 0:
            raise ValueError("partitions must be positive")
        per_worker = max(1, capacity_bytes // partitions)
        self.partitions: List[BlockCache] = [
            BlockCache(per_worker) for _ in range(partitions)
        ]
        self.capacity_bytes = per_worker * partitions

    def _route(self, namespace: str, key_bytes: bytes) -> BlockCache:
        digest = zlib.crc32(namespace.encode("utf-8") + b"\x00" + key_bytes)
        return self.partitions[digest % len(self.partitions)]

    def get(self, namespace: str, key_bytes: bytes) -> Optional[bytes]:
        return self._route(namespace, key_bytes).get(namespace, key_bytes)

    def peek(self, namespace: str, key_bytes: bytes) -> Optional[bytes]:
        return self._route(namespace, key_bytes).peek(namespace, key_bytes)

    def put(self, namespace: str, key_bytes: bytes, payload: bytes) -> None:
        self._route(namespace, key_bytes).put(namespace, key_bytes, payload)

    def invalidate(self, namespace: str, key_bytes: bytes) -> bool:
        return self._route(namespace, key_bytes).invalidate(
            namespace, key_bytes
        )

    def invalidate_namespace(self, namespace: str) -> int:
        return sum(
            cache.invalidate_namespace(namespace) for cache in self.partitions
        )

    def clear(self) -> None:
        for cache in self.partitions:
            cache.clear()

    @property
    def stats(self) -> CacheStats:
        """Aggregate statistics over all worker partitions."""
        total = CacheStats()
        for cache in self.partitions:
            total.add(cache.stats)
        return total

    def __len__(self) -> int:
        return sum(len(cache) for cache in self.partitions)

    def __repr__(self) -> str:
        return (
            f"PartitionedBlockCache(workers={len(self.partitions)}, "
            f"entries={len(self)})"
        )


#: either cache flavor — they expose the same get/put/invalidate surface
AnyBlockCache = Union[BlockCache, PartitionedBlockCache]


def make_cache(
    capacity_bytes: int, partitions: int = 1
) -> Optional[AnyBlockCache]:
    """Build the cache a ``cache_capacity_bytes`` knob asks for.

    ``capacity_bytes <= 0`` means caching is off (``None``) — the paper
    benchmarks pin this so they keep measuring BaaV's contribution alone.
    """
    if capacity_bytes <= 0:
        return None
    if partitions <= 1:
        return BlockCache(capacity_bytes)
    return PartitionedBlockCache(capacity_bytes, partitions)


def read_through(
    cache: Optional[AnyBlockCache],
    namespace: str,
    key_bytes: bytes,
    fetch_one: Callable[[bytes], Optional[bytes]],
) -> Tuple[Optional[bytes], bool]:
    """Serve one payload through ``cache``; ``(payload, reached_cluster)``.

    A hit is served locally (no storage traffic); a miss calls
    ``fetch_one`` and fills the cache with its non-``None`` result.
    This is THE read-through step — every cached point-read path
    (TaaV tuples, BaaV segments, stats sidecars) goes through here or
    :func:`read_through_many`, so cache semantics live in one place.
    """
    if cache is not None:
        data = cache.get(namespace, key_bytes)
        if data is not None:
            return data, False
    data = fetch_one(key_bytes)
    if data is not None and cache is not None:
        cache.put(namespace, key_bytes, data)
    return data, True


def read_through_many(
    cache: Optional[AnyBlockCache],
    namespace: str,
    keys: Sequence[bytes],
    fetch_many: Callable[[List[bytes]], List[Optional[bytes]]],
) -> List[Tuple[Optional[bytes], bool]]:
    """Batched :func:`read_through`: positional ``(payload, reached_cluster)``
    per key; only the cache-missing keys are passed to ``fetch_many``."""
    if cache is None:
        return [(data, True) for data in fetch_many(list(keys))]
    out: List[Tuple[Optional[bytes], bool]] = [(None, False)] * len(keys)
    missing: List[Tuple[int, bytes]] = []
    for index, key_bytes in enumerate(keys):
        data = cache.get(namespace, key_bytes)
        if data is not None:
            out[index] = (data, False)
        else:
            missing.append((index, key_bytes))
    if missing:
        fetched = fetch_many([key_bytes for _, key_bytes in missing])
        for (index, key_bytes), data in zip(missing, fetched):
            out[index] = (data, True)
            if data is not None:
                cache.put(namespace, key_bytes, data)
    return out
