"""Client-side read-through block cache for the KV stack.

Real deployments of the substrates the paper models put a block cache in
front of the store (HBase's BlockCache, Cassandra's row/key caches); an
HTAP stack's analytic path lives or dies on how well hot data stays close
to compute. This module provides that layer for the repro:

* :class:`BlockCache` — a byte-capacity LRU over ``(namespace,
  key_bytes) → payload bytes``, with hit / miss / eviction / bytes
  statistics;
* :class:`PartitionedBlockCache` — per-worker caches matching the
  per-worker partitions of the parallel engine: keys are routed to one
  sub-cache by a stable hash, so the same worker owns the same keys
  across queries (no cross-worker sharing, as on a real cluster);
* :func:`make_cache` — the knob-to-cache factory used by the systems.

The cache is **read-through** and **write-invalidated**: readers
(:class:`repro.baav.store.KVInstance`, :class:`repro.kv.taav.TaaVRelation`)
consult it before the cluster and fill it on miss; every write routed
through :class:`repro.kv.cluster.KVCluster` (``put`` / ``multi_put`` /
``delete`` / ``drop_namespace``) invalidates the touched keys in every
cache registered with the cluster. Cached payloads are raw bytes — value
objects are re-decoded per read — so there is no aliasing between cached
state and caller-mutated blocks.

Cache hits never reach a storage node: :class:`~repro.kv.node.NodeCounters`
stay honest and a hit costs zero round trips in the cost model, which is
exactly the speedup the caching benchmark measures. Blind scans
(``KVCluster.scan``) bypass the cache entirely — they stream every pair
anyway and would only evict the hot point-read set.

Concurrency (PR 5)
------------------

The cache is shared by every query thread, so each :class:`BlockCache`
guards its LRU map with a mutex (an ``OrderedDict`` cannot survive
concurrent ``move_to_end``), and its statistics are **thread-sharded**:
each thread accumulates hits/misses into a private
:class:`CacheStats` shard, so increments are never lost and
:attr:`BlockCache.stats` can aggregate a snapshot under the lock whose
invariants always hold (``hits + misses == lookups``, ``hit_rate <= 1``
— the bug class the PR-5 regression tests pin down). Per-query metric
probes read :meth:`thread_stats`, the calling thread's own shard, so a
query's cache-hit attribution stays exact while other queries share the
cache.
"""

from __future__ import annotations

import threading
import zlib
from collections import OrderedDict
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.locks import ShardSet, make_rlock

if TYPE_CHECKING:  # import cycle guard: cluster imports this module's
    # siblings; the overlay is only ever *passed in* here
    from repro.mvcc.versions import VersionStore


@dataclass
class CacheStats:
    """Cumulative statistics of one cache (or an aggregate of several)."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0
    insertions: int = 0
    bytes_cached: int = 0    # current resident payload bytes
    bytes_served: int = 0    # cumulative payload bytes served from hits

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hits over lookups; 0.0 when the cache was never consulted."""
        lookups = self.lookups
        return self.hits / lookups if lookups else 0.0

    def add(self, other: "CacheStats") -> None:
        self.hits += other.hits
        self.misses += other.misses
        self.evictions += other.evictions
        self.invalidations += other.invalidations
        self.insertions += other.insertions
        self.bytes_cached += other.bytes_cached
        self.bytes_served += other.bytes_served

    def __str__(self) -> str:
        return (
            f"hits={self.hits} misses={self.misses} "
            f"rate={self.hit_rate:.1%} evictions={self.evictions} "
            f"cached={self.bytes_cached}B"
        )


#: accounted per-entry bookkeeping overhead (dict slot, key tuple) so a
#: cache of many tiny values cannot pretend to be free
ENTRY_OVERHEAD_BYTES = 64

_CacheKey = Tuple[str, bytes]


class BlockCache:
    """A byte-capacity LRU cache of ``(namespace, key_bytes) → payload``.

    ``capacity_bytes`` bounds the sum of entry charges (key + payload +
    :data:`ENTRY_OVERHEAD_BYTES`); least-recently-used entries are
    evicted when an insertion exceeds it. A payload larger than the whole
    capacity is never admitted (it would only flush the cache for one
    use). Absent keys are not cached — a read miss on a missing key
    always reaches the cluster.
    """

    #: invalidation-record cap before the floor-epoch prune kicks in
    MAX_INVALIDATION_RECORDS = 4096

    def __init__(self, capacity_bytes: int) -> None:
        if capacity_bytes <= 0:
            raise ValueError("capacity_bytes must be positive")
        self.capacity_bytes = capacity_bytes
        self._entries: "OrderedDict[_CacheKey, bytes]" = OrderedDict()
        #: serializes LRU-map access across query threads
        self._lock = make_rlock("BlockCache._lock")
        #: per-thread statistic shards (each mutated only by its owner;
        #: registry survives thread death — idents are never consulted)
        self._shards: ShardSet[CacheStats] = ShardSet(CacheStats)
        #: monotonically increasing invalidation clock; a read-through
        #: fill observed at epoch E is rejected if its key (or the
        #: key's namespace) was invalidated after E — see
        #: :meth:`put_if_fresh`
        self._epoch = 0
        self._floor_epoch = 0
        self._invalidated_keys: Dict[_CacheKey, int] = {}
        self._invalidated_namespaces: Dict[str, int] = {}

    @property
    def _stats(self) -> CacheStats:
        """The calling thread's statistics shard."""
        return self._shards.local()

    @property
    def stats(self) -> CacheStats:
        """Aggregate statistics — a consistent snapshot, not a live view.

        Taken under the cache lock, so no in-flight lookup can tear it
        (``hits + misses == lookups`` always holds on the copy).
        """
        with self._lock:
            total = CacheStats()
            for shard in self._shards.all():
                total.add(shard)
            return total

    def thread_stats(self) -> CacheStats:
        """A copy of the CALLING THREAD's shard (per-query attribution)."""
        shard = self._shards.peek()
        total = CacheStats()
        if shard is not None:
            total.add(shard)
        return total

    # -- read path --------------------------------------------------------

    def get(self, namespace: str, key_bytes: bytes) -> Optional[bytes]:
        """Return the cached payload or ``None``; counts a hit or miss."""
        with self._lock:
            entry = self._entries.get((namespace, key_bytes))
            if entry is None:
                self._stats.misses += 1
                return None
            self._entries.move_to_end((namespace, key_bytes))
            stats = self._stats
            stats.hits += 1
            stats.bytes_served += len(entry)
            return entry

    def peek(self, namespace: str, key_bytes: bytes) -> Optional[bytes]:
        """Uncounted, LRU-neutral read (tests and introspection)."""
        with self._lock:
            return self._entries.get((namespace, key_bytes))

    # -- fill / invalidate -------------------------------------------------

    @staticmethod
    def _charge(key: _CacheKey, payload: bytes) -> int:
        return len(key[0]) + len(key[1]) + len(payload) + ENTRY_OVERHEAD_BYTES

    def _resident_bytes(self) -> int:
        """Current resident charge, summed over shards (lock held)."""
        return sum(s.bytes_cached for s in self._shards.all())

    def put(self, namespace: str, key_bytes: bytes, payload: bytes) -> None:
        """Fill on read-miss (and refresh on re-fill); evicts LRU to fit."""
        key = (namespace, key_bytes)
        charge = self._charge(key, payload)
        if charge > self.capacity_bytes:
            return
        with self._lock:
            stats = self._stats
            old = self._entries.pop(key, None)
            if old is not None:
                stats.bytes_cached -= self._charge(key, old)
            resident = self._resident_bytes()
            while self._entries and resident + charge > self.capacity_bytes:
                evicted_key, evicted = self._entries.popitem(last=False)
                evicted_charge = self._charge(evicted_key, evicted)
                stats.bytes_cached -= evicted_charge
                resident -= evicted_charge
                stats.evictions += 1
            self._entries[key] = payload
            stats.bytes_cached += charge
            stats.insertions += 1

    # -- stale-fill protection --------------------------------------------

    def read_epoch(self, namespace: str, key_bytes: bytes) -> int:
        """The invalidation clock, observed BEFORE a read-through fetch.

        Pass the value to :meth:`put_if_fresh` after the fetch: a write
        that invalidated the key (or its whole namespace) in between
        advances the clock, and the fill is rejected — otherwise a slow
        reader could re-install the pre-write payload and serve it
        stale forever.
        """
        with self._lock:
            return self._epoch

    def put_if_fresh(
        self, namespace: str, key_bytes: bytes, payload: bytes,
        epoch: int,
    ) -> bool:
        """Fill only if the key was not invalidated since ``epoch``."""
        with self._lock:
            if epoch < self._floor_epoch:
                return False
            key = (namespace, key_bytes)
            if self._invalidated_keys.get(key, -1) > epoch:
                return False
            if self._invalidated_namespaces.get(namespace, -1) > epoch:
                return False
            self.put(namespace, key_bytes, payload)
            return True

    def _record_invalidation(
        self, namespace: str, key_bytes: Optional[bytes]
    ) -> None:
        """Advance the clock and remember what was invalidated
        (lock held). Records are pruned by raising the floor epoch —
        an in-flight fill older than the floor is rejected outright."""
        # repro-lint: holds=_lock -- invalidate/invalidate_namespace/clear
        self._epoch += 1
        if key_bytes is None:
            self._invalidated_namespaces[namespace] = self._epoch
        else:
            self._invalidated_keys[(namespace, key_bytes)] = self._epoch
        if (
            len(self._invalidated_keys) + len(self._invalidated_namespaces)
            > self.MAX_INVALIDATION_RECORDS
        ):
            self._floor_epoch = self._epoch
            self._invalidated_keys.clear()
            self._invalidated_namespaces.clear()

    def invalidate(self, namespace: str, key_bytes: bytes) -> bool:
        """Drop one entry (a write touched it); True if it was cached.

        Also recorded on the invalidation clock, so a read-through fill
        that fetched BEFORE this write cannot re-install the stale
        payload afterwards (see :meth:`put_if_fresh`).
        """
        with self._lock:
            self._record_invalidation(namespace, key_bytes)
            entry = self._entries.pop((namespace, key_bytes), None)
            if entry is None:
                return False
            stats = self._stats
            stats.bytes_cached -= self._charge(
                (namespace, key_bytes), entry
            )
            stats.invalidations += 1
            return True

    def invalidate_namespace(self, namespace: str) -> int:
        """Drop every entry of a namespace (``drop_namespace``)."""
        with self._lock:
            self._record_invalidation(namespace, None)
            doomed = [k for k in self._entries if k[0] == namespace]
            stats = self._stats
            for key in doomed:
                entry = self._entries.pop(key)
                stats.bytes_cached -= self._charge(key, entry)
            stats.invalidations += len(doomed)
            return len(doomed)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._epoch += 1
            self._floor_epoch = self._epoch
            self._invalidated_keys.clear()
            self._invalidated_namespaces.clear()
            for shard in self._shards.all():
                shard.bytes_cached = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __repr__(self) -> str:
        return (
            f"BlockCache(entries={len(self)}, "
            f"{self.stats.bytes_cached}/{self.capacity_bytes}B)"
        )


class PartitionedBlockCache:
    """Per-worker block caches matching per-worker partitions.

    The parallel engine's ``p`` workers each keep a private cache of the
    keys they own; a key's owner is a stable hash of ``(namespace,
    key_bytes)``, so the same worker serves the same keys across queries
    — repeat hits accrue per worker without modeling a shared cache the
    real deployment would not have. Capacity is split evenly.
    """

    def __init__(self, capacity_bytes: int, partitions: int) -> None:
        if partitions <= 0:
            raise ValueError("partitions must be positive")
        per_worker = max(1, capacity_bytes // partitions)
        self.partitions: List[BlockCache] = [
            BlockCache(per_worker) for _ in range(partitions)
        ]
        self.capacity_bytes = per_worker * partitions

    def _route(self, namespace: str, key_bytes: bytes) -> BlockCache:
        digest = zlib.crc32(namespace.encode("utf-8") + b"\x00" + key_bytes)
        return self.partitions[digest % len(self.partitions)]

    def get(self, namespace: str, key_bytes: bytes) -> Optional[bytes]:
        return self._route(namespace, key_bytes).get(namespace, key_bytes)

    def peek(self, namespace: str, key_bytes: bytes) -> Optional[bytes]:
        return self._route(namespace, key_bytes).peek(namespace, key_bytes)

    def put(self, namespace: str, key_bytes: bytes, payload: bytes) -> None:
        self._route(namespace, key_bytes).put(namespace, key_bytes, payload)

    def read_epoch(self, namespace: str, key_bytes: bytes) -> int:
        return self._route(namespace, key_bytes).read_epoch(
            namespace, key_bytes
        )

    def put_if_fresh(
        self, namespace: str, key_bytes: bytes, payload: bytes,
        epoch: int,
    ) -> bool:
        return self._route(namespace, key_bytes).put_if_fresh(
            namespace, key_bytes, payload, epoch
        )

    def invalidate(self, namespace: str, key_bytes: bytes) -> bool:
        return self._route(namespace, key_bytes).invalidate(
            namespace, key_bytes
        )

    def invalidate_namespace(self, namespace: str) -> int:
        return sum(
            cache.invalidate_namespace(namespace) for cache in self.partitions
        )

    def clear(self) -> None:
        for cache in self.partitions:
            cache.clear()

    @property
    def stats(self) -> CacheStats:
        """Aggregate statistics over all worker partitions (a snapshot)."""
        total = CacheStats()
        for cache in self.partitions:
            total.add(cache.stats)
        return total

    def thread_stats(self) -> CacheStats:
        """The calling thread's shards summed over partitions."""
        total = CacheStats()
        for cache in self.partitions:
            total.add(cache.thread_stats())
        return total

    def __len__(self) -> int:
        return sum(len(cache) for cache in self.partitions)

    def __repr__(self) -> str:
        return (
            f"PartitionedBlockCache(workers={len(self.partitions)}, "
            f"entries={len(self)})"
        )


#: either cache flavor — they expose the same get/put/invalidate surface
AnyBlockCache = Union[BlockCache, PartitionedBlockCache]


def make_cache(
    capacity_bytes: int, partitions: int = 1
) -> Optional[AnyBlockCache]:
    """Build the cache a ``cache_capacity_bytes`` knob asks for.

    ``capacity_bytes <= 0`` means caching is off (``None``) — the paper
    benchmarks pin this so they keep measuring BaaV's contribution alone.
    """
    if capacity_bytes <= 0:
        return None
    if partitions <= 1:
        return BlockCache(capacity_bytes)
    return PartitionedBlockCache(capacity_bytes, partitions)


def read_through(
    cache: Optional[AnyBlockCache],
    namespace: str,
    key_bytes: bytes,
    fetch_one: Callable[[bytes], Optional[bytes]],
    versions: Optional["VersionStore"] = None,
) -> Tuple[Optional[bytes], bool]:
    """Serve one payload through ``cache``; ``(payload, reached_cluster)``.

    A hit is served locally (no storage traffic); a miss calls
    ``fetch_one`` and fills the cache with its non-``None`` result.
    This is THE read-through step — every cached point-read path
    (TaaV tuples, BaaV segments, stats sidecars) goes through here or
    :func:`read_through_many`, so cache semantics live in one place.

    ``versions`` is the cluster's MVCC overlay: a thread pinned at a
    snapshot epoch must not be served the *current* value from the
    cache when the overlay holds the one visible at its epoch, and a
    payload the overlay answered must never be filled into the cache
    (it would poison readers of the current state).
    """
    snapshot_epoch = (
        versions.read_epoch() if versions is not None else None
    )
    if versions is not None and snapshot_epoch is not None:
        handled, data = versions.read_visible(
            namespace, key_bytes, snapshot_epoch
        )
        if handled:
            return data, False
    epoch = 0
    if cache is not None:
        data = cache.get(namespace, key_bytes)
        if data is not None:
            return data, False
        epoch = cache.read_epoch(namespace, key_bytes)
    data = fetch_one(key_bytes)
    if data is not None and cache is not None:
        if (
            versions is not None
            and snapshot_epoch is not None
            and versions.is_overlaid(
                namespace, key_bytes, snapshot_epoch
            )
        ):
            # a commit raced the fetch: the payload came from the
            # overlay, not the current base — do not cache it
            return data, True
        # guarded fill: a write that raced the fetch wins
        cache.put_if_fresh(namespace, key_bytes, data, epoch)
    return data, True


def read_through_many(
    cache: Optional[AnyBlockCache],
    namespace: str,
    keys: Sequence[bytes],
    fetch_many: Callable[[List[bytes]], List[Optional[bytes]]],
    versions: Optional["VersionStore"] = None,
) -> List[Tuple[Optional[bytes], bool]]:
    """Batched :func:`read_through`: positional ``(payload, reached_cluster)``
    per key; only the cache-missing keys are passed to ``fetch_many``.
    ``versions`` routes snapshot-pinned threads around the cache (see
    :func:`read_through`)."""
    snapshot_epoch = (
        versions.read_epoch() if versions is not None else None
    )
    out: List[Tuple[Optional[bytes], bool]] = [(None, False)] * len(keys)
    pending: List[Tuple[int, bytes]] = [
        (index, key_bytes) for index, key_bytes in enumerate(keys)
    ]
    if versions is not None and snapshot_epoch is not None:
        visible = versions.read_visible_many(
            namespace, keys, snapshot_epoch
        )
        pending = []
        for index, (handled, data) in enumerate(visible):
            if handled:
                out[index] = (data, False)
            else:
                pending.append((index, keys[index]))
        if not pending:
            return out
    if cache is None:
        fetched = fetch_many([key_bytes for _, key_bytes in pending])
        for (index, _), data in zip(pending, fetched):
            out[index] = (data, True)
        return out
    missing: List[Tuple[int, bytes, int]] = []
    for index, key_bytes in pending:
        data = cache.get(namespace, key_bytes)
        if data is not None:
            out[index] = (data, False)
        else:
            missing.append(
                (index, key_bytes, cache.read_epoch(namespace, key_bytes))
            )
    if missing:
        fetched = fetch_many([key_bytes for _, key_bytes, _ in missing])
        for (index, key_bytes, epoch), data in zip(missing, fetched):
            out[index] = (data, True)
            if data is not None:
                if (
                    versions is not None
                    and snapshot_epoch is not None
                    and versions.is_overlaid(
                        namespace, key_bytes, snapshot_epoch
                    )
                ):
                    # a commit raced the fetch: an overlay payload must
                    # not be cached as the current base value
                    continue
                # guarded fill: a write that raced the fetch wins
                cache.put_if_fresh(namespace, key_bytes, data, epoch)
    return out
