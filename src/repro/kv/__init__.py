"""KV storage substrate: codec, memstore, DHT cluster, block cache, TaaV layout."""

from repro.kv.backends import BackendProfile, CASSANDRA, HBASE, KUDU, PROFILES, profile
from repro.kv.cache import (
    BlockCache,
    CacheStats,
    PartitionedBlockCache,
    make_cache,
)
from repro.kv.cluster import ClusterStats, KVCluster, RebalanceReport, TRANSPORTS
from repro.kv.hashring import HashRing
from repro.kv.lsm import BloomFilter, LSMStore
from repro.kv.memstore import MemStore
from repro.kv.node import NodeCounters, StorageNode
from repro.kv.remote import NodeClient, NodeProcess, RemoteNode, RemoteStore
from repro.kv.server import NodeServer
from repro.kv.taav import TaaVRelation, TaaVStore

__all__ = [
    "BackendProfile",
    "BlockCache",
    "CacheStats",
    "CASSANDRA",
    "ClusterStats",
    "HBASE",
    "HashRing",
    "KUDU",
    "BloomFilter",
    "KVCluster",
    "NodeClient",
    "NodeProcess",
    "NodeServer",
    "PartitionedBlockCache",
    "make_cache",
    "LSMStore",
    "MemStore",
    "NodeCounters",
    "PROFILES",
    "RebalanceReport",
    "RemoteNode",
    "RemoteStore",
    "StorageNode",
    "TaaVRelation",
    "TaaVStore",
    "TRANSPORTS",
    "profile",
]
