"""KV storage substrate: codec, memstore, DHT cluster, block cache, TaaV layout."""

from repro.kv.backends import BackendProfile, CASSANDRA, HBASE, KUDU, PROFILES, profile
from repro.kv.cache import (
    BlockCache,
    CacheStats,
    PartitionedBlockCache,
    make_cache,
)
from repro.kv.cluster import KVCluster, RebalanceReport
from repro.kv.hashring import HashRing
from repro.kv.lsm import BloomFilter, LSMStore
from repro.kv.memstore import MemStore
from repro.kv.node import NodeCounters, StorageNode
from repro.kv.taav import TaaVRelation, TaaVStore

__all__ = [
    "BackendProfile",
    "BlockCache",
    "CacheStats",
    "CASSANDRA",
    "HBASE",
    "HashRing",
    "KUDU",
    "BloomFilter",
    "KVCluster",
    "PartitionedBlockCache",
    "make_cache",
    "LSMStore",
    "MemStore",
    "NodeCounters",
    "PROFILES",
    "RebalanceReport",
    "StorageNode",
    "TaaVRelation",
    "TaaVStore",
    "profile",
]
