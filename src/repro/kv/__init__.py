"""KV storage substrate: codec, memstore, DHT cluster, block cache, TaaV layout."""

from repro.kv.backends import BackendProfile, CASSANDRA, HBASE, KUDU, PROFILES, profile
from repro.kv.cache import (
    BlockCache,
    CacheStats,
    PartitionedBlockCache,
    make_cache,
)
from repro.kv.checkpoint import NodeDurability, RecoveryReport
from repro.kv.cluster import (
    ClusterStats,
    DURABILITY_MODES,
    KVCluster,
    RebalanceReport,
    TRANSPORTS,
)
from repro.kv.hashring import HashRing
from repro.kv.lsm import BloomFilter, LSMStore
from repro.kv.memstore import MemStore
from repro.kv.node import NodeCounters, StorageNode
from repro.kv.remote import NodeClient, NodeProcess, RemoteNode, RemoteStore
from repro.kv.server import NodeServer
from repro.kv.taav import TaaVRelation, TaaVStore
from repro.kv.wal import FSYNC_POLICIES, WriteAheadLog, read_wal

__all__ = [
    "BackendProfile",
    "BlockCache",
    "CacheStats",
    "CASSANDRA",
    "ClusterStats",
    "DURABILITY_MODES",
    "FSYNC_POLICIES",
    "HBASE",
    "HashRing",
    "KUDU",
    "BloomFilter",
    "KVCluster",
    "NodeClient",
    "NodeProcess",
    "NodeServer",
    "PartitionedBlockCache",
    "make_cache",
    "LSMStore",
    "MemStore",
    "NodeCounters",
    "NodeDurability",
    "PROFILES",
    "RebalanceReport",
    "RecoveryReport",
    "RemoteNode",
    "RemoteStore",
    "StorageNode",
    "TaaVRelation",
    "TaaVStore",
    "TRANSPORTS",
    "WriteAheadLog",
    "profile",
    "read_wal",
]
