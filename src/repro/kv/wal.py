"""The per-node write-ahead log: length-prefixed, CRC-checked records.

Every mutation of a durable storage engine is appended here *before* it
is acknowledged, so a node that dies mid-stream (``SIGKILL``, a pulled
plug on the process level) can rebuild its exact pre-crash store by
replaying the log over the last checkpoint
(:mod:`repro.kv.checkpoint`). The record codec reuses the
:mod:`repro.kv.wire` discipline — strict bounds-checked reads via
:class:`~repro.kv.wire.Reader`, u32 big-endian lengths, one opcode byte
— so the WAL is as refuse-garbage-early as the socket protocol.

Record layout (append-only file of these)::

    +----------------+----------------+---------------------------+
    | u32 length (BE)| u32 crc32 (BE) | payload (length bytes)    |
    +----------------+----------------+---------------------------+

Payload: ``u8 op`` + op-specific body covering the engines' whole
mutating surface: ``PUT`` / ``MULTI_PUT`` / ``DELETE`` /
``MULTI_DELETE`` / ``DROP_PREFIX`` / ``CLEAR``. The CRC is over the
payload, so a torn or bit-flipped final record is detected and replay
stops cleanly at the last intact record (`read_wal` reports the valid
byte offset so recovery can truncate the debris before appending).

Crash model and fsync policies
------------------------------

Every append ``flush()``es to the OS page cache before the operation is
acknowledged, so a *process* crash (the SIGKILL fault injection, a
Python-level panic) can never lose an acknowledged write under **any**
policy — userspace buffers die with the process, the page cache does
not. What ``fsync_policy`` controls is the *machine*-crash window, the
same trade-off as SQLite's ``synchronous`` pragma:

* ``"always"``  — ``fsync`` every record (``synchronous=FULL``): no
  acknowledged write is lost even to a power cut; slowest.
* ``"group"``   — group commit: ``fsync`` once per ``group_size``
  appends and on checkpoint/close (``synchronous=NORMAL``): bounded
  machine-crash window, near-``never`` throughput. The default.
* ``"never"``   — leave syncing to the OS writeback: fastest; a
  machine crash may lose the page-cache tail (process crashes still
  lose nothing).
"""

from __future__ import annotations

import os
import struct
import zlib
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import WireProtocolError
from repro.kv.wire import MAX_FRAME_BYTES, Reader
from repro.locks import make_lock

_U32 = struct.Struct(">I")

#: a WAL record's payload obeys the same ceiling as a wire frame — a
#: declared length past it is corruption, refused before any allocation
MAX_RECORD_BYTES = MAX_FRAME_BYTES

#: u32 length + u32 crc32
_HEADER_BYTES = 8

FSYNC_POLICIES = ("always", "group", "never")
DEFAULT_GROUP_SIZE = 32

# -- record opcodes (payload byte 0) ----------------------------------------

WAL_PUT = 0x01
WAL_MULTI_PUT = 0x02
WAL_DELETE = 0x03
WAL_MULTI_DELETE = 0x04
WAL_DROP_PREFIX = 0x05
WAL_CLEAR = 0x06

WAL_OP_NAMES: Dict[int, str] = {
    WAL_PUT: "PUT",
    WAL_MULTI_PUT: "MULTI_PUT",
    WAL_DELETE: "DELETE",
    WAL_MULTI_DELETE: "MULTI_DELETE",
    WAL_DROP_PREFIX: "DROP_PREFIX",
    WAL_CLEAR: "CLEAR",
}


def validate_fsync_policy(policy: str) -> str:
    """Validate (and return) an fsync policy name, before any file I/O
    — the same validate-before-spawn contract as engine names."""
    if policy not in FSYNC_POLICIES:
        raise ValueError(
            f"unknown fsync_policy {policy!r}; expected one of "
            f"{list(FSYNC_POLICIES)}"
        )
    return policy


# --------------------------------------------------------------------------
# record codec
# --------------------------------------------------------------------------


def _put_bytes(out: bytearray, raw: bytes) -> None:
    out += _U32.pack(len(raw))
    out += raw


def encode_record(op: int, *args: Any) -> bytes:
    """Encode one record payload (the inverse of :func:`decode_record`)."""
    out = bytearray((op,))
    if op == WAL_PUT:
        key, value = args
        _put_bytes(out, key)
        _put_bytes(out, value)
    elif op == WAL_MULTI_PUT:
        (items,) = args
        out += _U32.pack(len(items))
        for key, value in items:
            _put_bytes(out, key)
            _put_bytes(out, value)
    elif op == WAL_DELETE:
        (key,) = args
        _put_bytes(out, key)
    elif op == WAL_MULTI_DELETE:
        (keys,) = args
        out += _U32.pack(len(keys))
        for key in keys:
            _put_bytes(out, key)
    elif op == WAL_DROP_PREFIX:
        (prefix,) = args
        _put_bytes(out, prefix)
    elif op == WAL_CLEAR:
        if args:
            raise WireProtocolError("CLEAR takes no arguments")
    else:
        raise WireProtocolError(f"unknown WAL opcode {op:#x}")
    return bytes(out)


def decode_record(payload: bytes) -> Tuple[int, Tuple[Any, ...]]:
    """Decode a record payload to ``(opcode, args)``, strictly."""
    if not payload:
        raise WireProtocolError("empty WAL record payload")
    reader = Reader(payload)
    op = reader.u8()
    args: Tuple[Any, ...]
    if op == WAL_PUT:
        args = (reader.bytes_(), reader.bytes_())
    elif op == WAL_MULTI_PUT:
        args = (
            [
                (reader.bytes_(), reader.bytes_())
                for _ in range(reader.u32())
            ],
        )
    elif op == WAL_DELETE:
        args = (reader.bytes_(),)
    elif op == WAL_MULTI_DELETE:
        args = ([reader.bytes_() for _ in range(reader.u32())],)
    elif op == WAL_DROP_PREFIX:
        args = (reader.bytes_(),)
    elif op == WAL_CLEAR:
        args = ()
    else:
        raise WireProtocolError(f"unknown WAL opcode {op:#x}")
    reader.expect_end()
    return op, args


def apply_record(store: Any, op: int, args: Tuple[Any, ...]) -> None:
    """Replay one decoded record against a raw storage engine.

    The store's WAL hook must be detached (or suspended) while
    replaying, otherwise replay would re-log its own input.
    """
    if op == WAL_PUT:
        store.put(args[0], args[1])
    elif op == WAL_MULTI_PUT:
        store.multi_put(args[0])
    elif op == WAL_DELETE:
        store.delete(args[0])
    elif op == WAL_MULTI_DELETE:
        store.multi_delete(args[0])
    elif op == WAL_DROP_PREFIX:
        store.drop_prefix(args[0])
    elif op == WAL_CLEAR:
        store.clear()
    else:  # unreachable after decode_record, kept for totality
        raise WireProtocolError(f"unknown WAL opcode {op:#x}")


# --------------------------------------------------------------------------
# reading a log back
# --------------------------------------------------------------------------


def read_wal(
    path: str,
) -> Tuple[List[Tuple[int, Tuple[Any, ...]]], int, bool]:
    """Read every intact record of a WAL file, tolerating a torn tail.

    Returns ``(records, valid_bytes, torn)``: the decoded records in
    append order, the byte offset of the last intact record's end, and
    whether debris followed it (a record cut short by the crash, a CRC
    mismatch, or an undecodable payload). Replay stops at the first
    invalid record — everything after a tear is unacknowledgeable by
    construction, because records are appended and flushed in order.
    A missing file reads as an empty log.
    """
    try:
        with open(path, "rb") as handle:
            data = handle.read()
    except FileNotFoundError:
        return [], 0, False
    records: List[Tuple[int, Tuple[Any, ...]]] = []
    pos = 0
    torn = False
    size = len(data)
    while pos < size:
        if pos + _HEADER_BYTES > size:
            torn = True
            break
        (length,) = _U32.unpack_from(data, pos)
        (crc,) = _U32.unpack_from(data, pos + 4)
        end = pos + _HEADER_BYTES + length
        if length > MAX_RECORD_BYTES or end > size:
            torn = True
            break
        payload = data[pos + _HEADER_BYTES:end]
        if zlib.crc32(payload) != crc:
            torn = True
            break
        try:
            records.append(decode_record(payload))
        except WireProtocolError:
            torn = True
            break
        pos = end
    return records, pos, torn


# --------------------------------------------------------------------------
# the log itself
# --------------------------------------------------------------------------


class WriteAheadLog:
    """An append-only record log with group commit.

    Thread-safe: appends, rolls and stat reads serialize on an internal
    mutex (engines already serialize under the node/server store lock,
    so the mutex is contention-free belt-and-braces).
    """

    def __init__(
        self,
        path: str,
        fsync_policy: str = "group",
        group_size: int = DEFAULT_GROUP_SIZE,
    ) -> None:
        validate_fsync_policy(fsync_policy)
        if group_size <= 0:
            raise ValueError("group_size must be positive")
        self.fsync_policy = fsync_policy
        self.group_size = group_size
        self._lock = make_lock("WriteAheadLog._lock")
        self._path = path
        self._file: Optional[Any] = open(path, "ab")
        #: appends since the last fsync (group-commit window)
        self._unsynced = 0
        self._stats: Dict[str, int] = {
            "records": 0,
            "bytes": 0,
            "fsyncs": 0,
            "rolls": 0,
        }

    @property
    def path(self) -> str:
        with self._lock:
            return self._path

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._file is None

    @property
    def stats(self) -> Dict[str, int]:
        """A copy of the cumulative counters (records/bytes/fsyncs/rolls)."""
        with self._lock:
            return dict(self._stats)

    # -- appending ----------------------------------------------------------

    def append(self, op: int, *args: Any) -> None:
        """Append one record and make it process-crash-safe.

        The record reaches the OS page cache before this returns under
        every policy; ``fsync_policy`` decides whether it also reaches
        the platter (see the module docstring's crash model).
        """
        payload = encode_record(op, *args)
        frame = (
            _U32.pack(len(payload))
            + _U32.pack(zlib.crc32(payload))
            + payload
        )
        with self._lock:
            handle = self._require_open()
            handle.write(frame)
            handle.flush()
            self._stats["records"] += 1
            self._stats["bytes"] += len(frame)
            if self.fsync_policy == "always":
                self._fsync_locked()
            elif self.fsync_policy == "group":
                self._unsynced += 1
                if self._unsynced >= self.group_size:
                    self._fsync_locked()

    def sync(self) -> None:
        """Force any group-commit window to the platter (checkpoint /
        close barrier). A no-op under ``"never"`` — that policy's whole
        point is leaving writeback to the OS."""
        with self._lock:
            if (
                self.fsync_policy != "never"
                and self._file is not None
                and self._unsynced
            ):
                self._fsync_locked()

    def _require_open(self) -> Any:
        # repro-lint: holds=_lock -- internal helper of the locked paths
        if self._file is None:
            raise ValueError(f"WAL {self._path!r} is closed")
        return self._file

    def _fsync_locked(self) -> None:
        # repro-lint: holds=_lock
        handle = self._require_open()
        os.fsync(handle.fileno())
        self._stats["fsyncs"] += 1
        self._unsynced = 0

    # -- lifecycle ----------------------------------------------------------

    def roll(self, new_path: str) -> str:
        """Switch to a fresh log file (the checkpoint/truncate cycle).

        The outgoing file needs no final sync: its records are covered
        by the checkpoint that triggered the roll, and the caller
        deletes it. Returns the old path so the caller can.
        """
        with self._lock:
            handle = self._require_open()
            handle.close()
            old_path = self._path
            self._path = new_path
            self._file = open(new_path, "ab")
            self._unsynced = 0
            self._stats["rolls"] += 1
            return old_path

    def close(self) -> None:
        """Flush, honor the policy's final sync, and close. Idempotent."""
        with self._lock:
            if self._file is None:
                return
            self._file.flush()
            if self.fsync_policy != "never" and self._unsynced:
                self._fsync_locked()
            self._file.close()
            self._file = None

    def abandon(self) -> None:
        """Drop the handle *without* the close-time sync — the crash
        injector's hammer: exactly what a SIGKILL leaves behind (the
        flushed-per-record page-cache state, nothing more)."""
        with self._lock:
            if self._file is None:
                return
            self._file.close()
            self._file = None

    def __repr__(self) -> str:
        with self._lock:
            state = "closed" if self._file is None else "open"
            return (
                f"WriteAheadLog({self._path!r}, {self.fsync_policy}, "
                f"{self._stats['records']} records, {state})"
            )
