"""Backend cost profiles standing in for HBase, Kudu and Cassandra.

The paper deploys Zidian on three SQL-over-NoSQL stacks: SparkSQL over
HBase (SoH), Kudu (SoK) and Cassandra (SoC). We do not have those systems;
per the substitution rule, each is modeled by a *cost profile* that converts
exactly-counted work (get invocations, values read/written, bytes moved)
into simulated time. The profiles encode the well-known qualitative
differences the paper leans on:

* HBase: slowest point gets and scan path (LSM read amplification, RPC
  overhead), heavy job start-up with SparkSQL.
* Kudu: columnar storage — the fastest sequential scan path and cheap gets.
* Cassandra: between the two; decent gets, slower scans than Kudu.

Calibration targets the *ordering and rough ratios* of Table 3
(SoH ≫ SoC > SoK on scan-bound queries), not absolute seconds. Fixed
overheads (job start-up, per-stage scheduling) are scaled down with the
datasets: the repository runs ~10³× smaller data than the paper's 128 GB,
so overheads keep roughly the paper's overhead-to-scan ratio instead of
their absolute cluster values — otherwise start-up would swamp every
laptop-scale measurement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class BackendProfile:
    """Simulated cost parameters for one KV backend.

    Times are in milliseconds; bandwidth in bytes per millisecond.

    Point-op latencies are decomposed into a fixed **per-round-trip** cost
    (RPC dispatch, network hop, server-side request setup — paid once per
    batch sent to a node) and a **per-key marginal** cost (index probe,
    block read — paid per key even inside a batch):

        get_latency_ms == round_trip_ms + get_key_ms
        put_latency_ms == round_trip_ms + put_key_ms

    A single-key operation therefore costs exactly what it always did,
    while an n-key batch to one node costs one round trip plus n marginal
    keys — the amortization real multi-get APIs (HBase ``Table.get(List)``,
    Cassandra ``IN``-clause reads, Kudu sessions) provide.
    """

    name: str
    get_latency_ms: float          # service time of one single-key get
    scan_value_ms: float           # per-value cost on the sequential path
    put_latency_ms: float          # service time of one single-key put
    write_value_ms: float          # per-value cost when writing
    network_bytes_per_ms: float    # per-link bandwidth
    cpu_value_ms: float            # SQL-layer per-value processing cost
    job_overhead_ms: float         # fixed start-up per query job
    stage_overhead_ms: float       # fixed overhead per plan stage
    round_trip_ms: float           # fixed cost of one RPC round trip
    get_key_ms: float              # marginal per-key cost in a batched get
    put_key_ms: float              # marginal per-key cost in a batched put
    #: cost of one WAL fsync on a storage node (PR 8). Modeled on
    #: commodity-disk write-barrier latency; group commit divides it
    #: across the batch, which is why the sweep in BENCH_durability
    #: shows "always" ≫ "group" ≈ "never". Defaulted so profiles
    #: predating durability stay constructible unchanged.
    fsync_ms: float = 0.1

    def __post_init__(self) -> None:
        for latency, marginal in (
            (self.get_latency_ms, self.get_key_ms),
            (self.put_latency_ms, self.put_key_ms),
        ):
            if abs(latency - (self.round_trip_ms + marginal)) > 1e-9:
                raise ValueError(
                    f"{self.name}: latency {latency} must equal "
                    f"round_trip_ms + marginal "
                    f"({self.round_trip_ms} + {marginal})"
                )

    def get_cost_ms(self, n_gets: int, n_values: int) -> float:
        """Time for ``n_gets`` unbatched gets returning ``n_values`` values."""
        return n_gets * self.get_latency_ms + n_values * self.scan_value_ms

    def put_cost_ms(self, n_puts: int, n_values: int) -> float:
        return n_puts * self.put_latency_ms + n_values * self.write_value_ms

    def batched_get_cost_ms(
        self, n_round_trips: int, n_keys: int, n_values: int
    ) -> float:
        """Time for ``n_keys`` gets coalesced into ``n_round_trips`` RPCs.

        ``batched_get_cost_ms(n, n, v) == get_cost_ms(n, v)`` — the
        unbatched case is one round trip per key.
        """
        return (
            n_round_trips * self.round_trip_ms
            + n_keys * self.get_key_ms
            + n_values * self.scan_value_ms
        )

    def batched_put_cost_ms(
        self, n_round_trips: int, n_keys: int, n_values: int
    ) -> float:
        return (
            n_round_trips * self.round_trip_ms
            + n_keys * self.put_key_ms
            + n_values * self.write_value_ms
        )

    def fsync_cost_ms(self, n_fsyncs: int) -> float:
        """Time spent in WAL write barriers (0 for a volatile cluster)."""
        if n_fsyncs <= 0:
            return 0.0
        return n_fsyncs * self.fsync_ms

    def transfer_ms(self, n_bytes: int, links: int = 1) -> float:
        """Time to move ``n_bytes`` over ``links`` parallel links."""
        if n_bytes <= 0:
            return 0.0
        return n_bytes / (self.network_bytes_per_ms * max(1, links))

    def compute_ms(self, n_values: int) -> float:
        return n_values * self.cpu_value_ms


# Round-trip shares follow the stacks' RPC weight: HBase pays the
# heaviest per-request cost (Thrift/protobuf RPC + region lookup), so
# batching amortizes the most there; Kudu's point path is already lean.
HBASE = BackendProfile(
    name="hbase",
    get_latency_ms=0.50,
    scan_value_ms=0.0020,
    put_latency_ms=0.30,
    write_value_ms=0.0015,
    network_bytes_per_ms=120_000.0,   # ~120 MB/s per link
    cpu_value_ms=0.0008,
    job_overhead_ms=15.0,
    stage_overhead_ms=1.0,
    round_trip_ms=0.28,
    get_key_ms=0.22,
    put_key_ms=0.02,
    fsync_ms=0.15,   # HDFS-backed HLog sync: the heaviest barrier
)

KUDU = BackendProfile(
    name="kudu",
    get_latency_ms=0.10,
    scan_value_ms=0.0004,
    put_latency_ms=0.12,
    write_value_ms=0.0009,
    network_bytes_per_ms=120_000.0,
    cpu_value_ms=0.0008,
    job_overhead_ms=4.0,
    stage_overhead_ms=0.3,
    round_trip_ms=0.06,
    get_key_ms=0.04,
    put_key_ms=0.06,
    fsync_ms=0.08,   # local-disk op log, lean barrier path
)

CASSANDRA = BackendProfile(
    name="cassandra",
    get_latency_ms=0.30,
    scan_value_ms=0.0012,
    put_latency_ms=0.18,
    write_value_ms=0.0012,
    network_bytes_per_ms=120_000.0,
    cpu_value_ms=0.0008,
    job_overhead_ms=6.0,
    stage_overhead_ms=0.4,
    round_trip_ms=0.15,
    get_key_ms=0.15,
    put_key_ms=0.03,
    fsync_ms=0.10,   # commitlog sync, between the two
)

PROFILES: Dict[str, BackendProfile] = {
    profile.name: profile for profile in (HBASE, KUDU, CASSANDRA)
}


def profile(name: str) -> BackendProfile:
    """Look up a backend profile by name (``hbase``/``kudu``/``cassandra``)."""
    try:
        return PROFILES[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown backend {name!r}; choose from {sorted(PROFILES)}"
        ) from None
