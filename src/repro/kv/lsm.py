"""An LSM-tree storage engine — the write path of HBase/Cassandra.

The paper's substrates (HBase, Cassandra) are log-structured merge
stores; §2 discusses LSM-based NoSQL explicitly. This engine implements
the classic shape behind them:

* a mutable **memtable** absorbing writes;
* immutable sorted **runs** (SSTable stand-ins) produced by flushing the
  memtable when it exceeds a threshold;
* per-run **Bloom filters** so point reads skip runs that cannot contain
  the key;
* **tombstones** for deletes, dropped at the bottom level;
* size-tiered **compaction** merging runs when too many accumulate.

It is interface-compatible with :class:`repro.kv.memstore.MemStore`, so a
:class:`repro.kv.cluster.KVCluster` can be built on either engine
(``KVCluster(engine="lsm")``); every correctness test and benchmark runs
unchanged on top. Read/write amplification counters expose the LSM
trade-off that motivates the backends' cost profiles.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_left
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.kv import wal as walmod
from repro.kv.memstore import prefix_upper_bound

_TOMBSTONE = object()


class BloomFilter:
    """A fixed-size Bloom filter over byte keys."""

    __slots__ = ("_bits", "_size", "_hashes")

    def __init__(self, expected: int, bits_per_key: int = 10,
                 hashes: int = 4) -> None:
        self._size = max(64, expected * bits_per_key)
        self._bits = bytearray((self._size + 7) // 8)
        self._hashes = hashes

    def _positions(self, key: bytes) -> Iterator[int]:
        digest = hashlib.md5(key).digest()
        h1 = int.from_bytes(digest[:8], "big")
        h2 = int.from_bytes(digest[8:], "big") | 1
        for i in range(self._hashes):
            yield (h1 + i * h2) % self._size

    def add(self, key: bytes) -> None:
        for position in self._positions(key):
            self._bits[position >> 3] |= 1 << (position & 7)

    def might_contain(self, key: bytes) -> bool:
        return all(
            self._bits[p >> 3] & (1 << (p & 7)) for p in self._positions(key)
        )


class _Run:
    """An immutable sorted run of (key, value-or-tombstone) pairs."""

    __slots__ = ("keys", "values", "bloom")

    def __init__(self, items: List[Tuple[bytes, object]]) -> None:
        self.keys = [k for k, _ in items]
        self.values = [v for _, v in items]
        self.bloom = BloomFilter(len(items) or 1)
        for key in self.keys:
            self.bloom.add(key)

    def get(self, key: bytes):
        """Return the stored value, _TOMBSTONE, or None when absent."""
        index = bisect_left(self.keys, key)
        if index < len(self.keys) and self.keys[index] == key:
            return self.values[index]
        return None

    def __len__(self) -> int:
        return len(self.keys)


@dataclass
class LSMStats:
    """Amplification counters of the engine."""

    flushes: int = 0
    compactions: int = 0
    runs_probed: int = 0
    bloom_skips: int = 0
    entries_rewritten: int = 0


class LSMStore:
    """A single-node LSM KV store, interface-compatible with MemStore."""

    def __init__(
        self,
        memtable_limit: int = 256,
        max_runs: int = 4,
    ) -> None:
        if memtable_limit <= 0:
            raise ValueError("memtable_limit must be positive")
        self._memtable: Dict[bytes, object] = {}
        self._runs: List[_Run] = []  # newest first
        self._memtable_limit = memtable_limit
        self._max_runs = max_runs
        self._live_count = 0
        #: merged live view (sorted keys, values), rebuilt lazily; reused
        #: by keys()/next_key()/scan()/size_bytes() so repeated next_key
        #: iteration is linear overall instead of O(n²)
        self._merged: Optional[Tuple[List[bytes], List[bytes]]] = None
        self.stats = LSMStats()
        #: durability hook (see MemStore.attach_wal — same contract)
        self._wal: Optional[walmod.WriteAheadLog] = None
        self._wal_depth = 0

    # -- durability hook ----------------------------------------------------

    def attach_wal(self, wal: Optional[walmod.WriteAheadLog]) -> None:
        """Log every subsequent mutation to ``wal`` (``None`` detaches).

        Replay rebuilds the logical contents, not the physical
        memtable/run layout — a restart effectively compacts, which is
        also why checkpoints snapshot live pairs via ``scan()``.
        """
        self._wal = wal

    def _wal_log(self, op: int, *args: object) -> bool:
        if self._wal is None or self._wal_depth:
            return False
        self._wal.append(op, *args)
        return True

    # -- write path ---------------------------------------------------------

    def put(self, key: bytes, value: bytes) -> None:
        self._wal_log(walmod.WAL_PUT, key, value)
        # liveness probe is an internal write-path read: uncounted, so
        # runs_probed / bloom_skips reflect the read amplification of
        # *reads* only
        existed = self._contains_live(key)
        self._memtable[key] = value
        self._merged = None
        if not existed:
            self._live_count += 1
        self._maybe_flush()

    def multi_put(self, items: Sequence[Tuple[bytes, bytes]]) -> None:
        """Batched write of (key, value) pairs (memtable may flush
        mid-batch; ONE WAL record for the whole batch)."""
        items = list(items)
        logged = self._wal_log(walmod.WAL_MULTI_PUT, items)
        self._wal_depth += 1 if logged else 0
        try:
            for key, value in items:
                self.put(key, value)
        finally:
            self._wal_depth -= 1 if logged else 0

    def delete(self, key: bytes) -> bool:
        self._wal_log(walmod.WAL_DELETE, key)
        existed = self._contains_live(key)
        if existed:
            self._memtable[key] = _TOMBSTONE
            self._merged = None
            self._live_count -= 1
            self._maybe_flush()
        return existed

    def multi_delete(self, keys: Sequence[bytes]) -> int:
        """Batched delete; returns how many keys were live."""
        keys = list(keys)
        logged = self._wal_log(walmod.WAL_MULTI_DELETE, keys)
        self._wal_depth += 1 if logged else 0
        try:
            removed = 0
            for key in keys:
                if self.delete(key):
                    removed += 1
            return removed
        finally:
            self._wal_depth -= 1 if logged else 0

    def _maybe_flush(self) -> None:
        if len(self._memtable) < self._memtable_limit:
            return
        items = sorted(self._memtable.items())
        self._runs.insert(0, _Run(items))
        self._memtable.clear()
        self._merged = None
        self.stats.flushes += 1
        if len(self._runs) > self._max_runs:
            self._compact()

    def _compact(self) -> None:
        """Size-tiered compaction: merge all runs into one, newest wins;
        tombstones are dropped (this is the bottom level)."""
        merged: Dict[bytes, object] = {}
        for run in reversed(self._runs):  # oldest first, newest overwrites
            for key, value in zip(run.keys, run.values):
                merged[key] = value
                self.stats.entries_rewritten += 1
        survivors = sorted(
            (k, v) for k, v in merged.items() if v is not _TOMBSTONE
        )
        self._runs = [_Run(survivors)] if survivors else []
        self._merged = None
        self.stats.compactions += 1

    # -- read path ------------------------------------------------------------

    def _lookup(self, key: bytes, counted: bool = True):
        if key in self._memtable:
            return self._memtable[key]
        for run in self._runs:
            if not run.bloom.might_contain(key):
                if counted:
                    self.stats.bloom_skips += 1
                continue
            if counted:
                self.stats.runs_probed += 1
            value = run.get(key)
            if value is not None:
                return value
        return None

    def _contains_live(self, key: bytes) -> bool:
        """Uncounted liveness probe (write path / introspection)."""
        value = self._lookup(key, counted=False)
        return value is not None and value is not _TOMBSTONE

    def get(self, key: bytes) -> Optional[bytes]:
        value = self._lookup(key)
        if value is None or value is _TOMBSTONE:
            return None
        return value  # type: ignore[return-value]

    def multi_get(self, keys: Sequence[bytes]) -> List[Optional[bytes]]:
        """Batched lookup: one value (or ``None``) per key, in key order.

        Each key still walks the memtable and runs individually — the
        LSM read path is per-key — but the batch shares one invocation,
        which is what the cluster's round-trip accounting models.
        """
        return [self.get(key) for key in keys]

    def __contains__(self, key: bytes) -> bool:
        return self._contains_live(key)

    def __len__(self) -> int:
        return self._live_count

    # -- iteration --------------------------------------------------------------

    def _merged_view(self) -> Tuple[List[bytes], List[bytes]]:
        """Sorted (keys, values) of all live pairs, cached until a write.

        Building the merge is O(n log n) once per write epoch; every
        ``next_key`` / ``scan`` / ``size_bytes`` call in between reuses
        it, so driving a scan with repeated ``next_key`` is linear
        overall instead of rebuilding the full sorted key list per call.
        """
        if self._merged is None:
            seen: Dict[bytes, object] = {}
            for run in reversed(self._runs):
                for key, value in zip(run.keys, run.values):
                    seen[key] = value
            seen.update(self._memtable)
            live = sorted(
                (k, v) for k, v in seen.items() if v is not _TOMBSTONE
            )
            self._merged = (
                [k for k, _ in live],
                [v for _, v in live],  # type: ignore[misc]
            )
        return self._merged

    def keys(self) -> List[bytes]:
        """All live keys in sorted order (merging memtable and runs)."""
        return list(self._merged_view()[0])

    def next_key(self, after: Optional[bytes] = None) -> Optional[bytes]:
        keys = self._merged_view()[0]
        if not keys:
            return None
        if after is None:
            return keys[0]
        index = bisect_left(keys, after)
        if index < len(keys) and keys[index] == after:
            index += 1
        return keys[index] if index < len(keys) else None

    def _prefix_range(self, prefix: bytes) -> Tuple[int, int]:
        """``[lo, hi)`` slice of the merged view carrying ``prefix``."""
        keys = self._merged_view()[0]
        if not prefix:
            return 0, len(keys)
        lo = bisect_left(keys, prefix)
        upper = prefix_upper_bound(prefix)
        hi = len(keys) if upper is None else bisect_left(keys, upper, lo)
        return lo, hi

    def scan(self, prefix: bytes = b"") -> Iterator[Tuple[bytes, bytes]]:
        keys, values = self._merged_view()
        lo, hi = self._prefix_range(prefix)
        for index in range(lo, hi):
            yield keys[index], values[index]

    def drop_prefix(self, prefix: bytes = b"") -> List[bytes]:
        """Delete every live key carrying ``prefix``; return them.

        Routed through :meth:`multi_delete` as one batch (and one WAL
        record): the doomed keys are materialized up front, so the
        flushes/compactions individual deletes trigger mid-batch can
        rebuild ``_merged_view`` freely without the loop iterating a
        stale snapshot.
        """
        keys = self._merged_view()[0]
        lo, hi = self._prefix_range(prefix)
        doomed = keys[lo:hi]
        if not doomed:
            return doomed
        logged = self._wal_log(walmod.WAL_DROP_PREFIX, prefix)
        self._wal_depth += 1 if logged else 0
        try:
            self.multi_delete(doomed)
        finally:
            self._wal_depth -= 1 if logged else 0
        return doomed

    # -- maintenance ---------------------------------------------------------------

    def size_bytes(self) -> int:
        keys, values = self._merged_view()
        return sum(len(k) + len(v) for k, v in zip(keys, values))

    def clear(self) -> None:
        """Reset to the freshly-constructed state.

        Resets the amplification counters too (PR 8 bugfix): a cleared
        store has flushed and compacted nothing, so stale
        ``flushes``/``runs_probed`` counts would no longer reconcile
        with the empty engine — same semantics as ``MemStore.clear``
        and the wire ``CLEAR`` op.
        """
        self._wal_log(walmod.WAL_CLEAR)
        self._memtable.clear()
        self._runs = []
        self._live_count = 0
        self._merged = None
        self.stats = LSMStats()

    @property
    def num_runs(self) -> int:
        return len(self._runs)

    @property
    def memtable_size(self) -> int:
        return len(self._memtable)
