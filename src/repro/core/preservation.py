"""Preservation checks — module M1 of Zidian (§5.2).

* Condition (I), Theorem 1: a BaaV schema ``R̃`` is *data preserving* for a
  database schema ``R`` iff for every relation R there is a KV schema whose
  closure covers ``att(R)``.
* Condition (II), Theorem 2: ``R̃`` is *result preserving* for an SPC query
  Q iff for every relation occurrence in ``min(Q)`` some KV schema's
  closure covers ``X_R^{min(Q)}``.
* Theorem 3 extends result preservation to RAaggr via max SPC sub-queries.
  In the supported SQL subset a query is an SPC core plus an optional
  group-by/having/order/limit top, so its unique max SPC sub-query is the
  core with the attributes needed above it treated as projection outputs —
  exactly what :class:`repro.sql.spc.SPCAnalysis` computes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set

from repro.baav.schema import BaaVSchema, KVSchema
from repro.core.closure import closures
from repro.relational.schema import DatabaseSchema
from repro.sql.minimize import minimize
from repro.sql.spc import SPCAnalysis


@dataclass
class PreservationReport:
    """Outcome of a data-preservation check."""

    preserved: bool
    #: relation -> KV schema name whose closure covers it (when preserved)
    witnesses: Dict[str, str] = field(default_factory=dict)
    #: relations with no covering closure
    missing: List[str] = field(default_factory=list)


def is_data_preserving(
    schema: DatabaseSchema, baav: BaaVSchema
) -> PreservationReport:
    """Check Condition (I) for every relation of ``schema``.

    Runs in O(|R| · |R̃|²) as discussed under Theorem 1: each closure is a
    fixpoint over the KV schemas and one closure is tested per relation.
    """
    clo = closures(baav)
    report = PreservationReport(preserved=True)
    for relation in schema:
        target = {f"{relation.name}.{a}" for a in relation.attribute_names}
        witness = None
        for kv_schema in baav.over_relation(relation.name):
            if target <= clo[kv_schema.name]:
                witness = kv_schema.name
                break
        if witness is None:
            # closures may also start from schemas of other relations
            for kv_schema in baav:
                if target <= clo[kv_schema.name]:
                    witness = kv_schema.name
                    break
        if witness is None:
            report.preserved = False
            report.missing.append(relation.name)
        else:
            report.witnesses[relation.name] = witness
    return report


@dataclass
class ResultPreservationReport:
    """Outcome of a result-preservation check for one query."""

    preserved: bool
    #: alias (of min(Q)) -> witnessing KV schema name
    witnesses: Dict[str, str] = field(default_factory=dict)
    #: aliases of min(Q) whose X-attributes no closure covers
    missing: List[str] = field(default_factory=list)
    #: aliases surviving minimization
    minimal_aliases: FrozenSet[str] = frozenset()


def is_result_preserving(
    analysis: SPCAnalysis,
    baav: BaaVSchema,
    minimized: Optional[SPCAnalysis] = None,
) -> ResultPreservationReport:
    """Check Condition (II) on ``min(Q)``.

    ``minimized`` may be supplied to avoid recomputing ``min(Q)``.
    """
    minimal = minimized if minimized is not None else minimize(analysis)
    clo = closures(baav)
    report = ResultPreservationReport(
        preserved=True, minimal_aliases=frozenset(minimal.atoms)
    )
    for alias, relation in minimal.atoms.items():
        x_attrs = minimal.x_attrs(alias)
        target = {
            f"{relation}.{attr.split('.', 1)[1]}" for attr in x_attrs
        }
        witness = None
        for kv_schema in baav.over_relation(relation):
            if target <= clo[kv_schema.name]:
                witness = kv_schema.name
                break
        if witness is None:
            report.preserved = False
            report.missing.append(alias)
        else:
            report.witnesses[alias] = witness
    return report


def covering_schema(
    alias: str,
    relation: str,
    x_attrs: Set[str],
    baav: BaaVSchema,
    clo: Optional[Dict[str, FrozenSet[str]]] = None,
) -> Optional[KVSchema]:
    """The first KV schema over ``relation`` whose closure covers ``x_attrs``."""
    clo = clo if clo is not None else closures(baav)
    target = {f"{relation}.{attr.split('.', 1)[1]}" for attr in x_attrs}
    for kv_schema in baav.over_relation(relation):
        if target <= clo[kv_schema.name]:
            return kv_schema
    return None
