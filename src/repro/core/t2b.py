"""T2B — TaaV-to-BaaV schema design under a storage budget (§8.1, M4).

Given the database schema, a (sample of the) database for size estimation,
a set of QCS mined from historical plans and a storage budget, T2B emits a
BaaV schema such that:

1. every QCS ``Z[X]`` is *supported*: from known ``X`` values the ``Z``
   attributes are retrievable (scan-free when the budget permits);
2. redundant KV schemas are removed (support of every QCS is unchanged
   without them), picking victims with minimal estimated impact;
3. while the estimated mapping size exceeds the budget, KV schemas of one
   relation are merged (same key first, then subset keys), trading
   duplication for space while preserving scan-free support.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.baav.schema import BaaVSchema, KVSchema
from repro.core.qcs import QCS
from repro.errors import SchemaError
from repro.relational.database import Database
from repro.relational.schema import DatabaseSchema, RelationSchema
from repro.relational.types import row_size


@dataclass
class T2BReport:
    """What T2B did and why."""

    supported: Dict[str, bool] = field(default_factory=dict)
    removed: List[str] = field(default_factory=list)
    merged: List[Tuple[str, str, str]] = field(default_factory=list)
    estimated_bytes: int = 0
    budget_bytes: Optional[int] = None
    within_budget: bool = True


def design_schema(
    schema: DatabaseSchema,
    qcs_list: Sequence[QCS],
    database: Optional[Database] = None,
    budget_bytes: Optional[int] = None,
) -> Tuple[BaaVSchema, T2BReport]:
    """Run T2B and return the BaaV schema plus a report."""
    designer = _Designer(schema, list(qcs_list), database, budget_bytes)
    return designer.run()


@dataclass
class Suggestion:
    """A suggested KV schema with its rationale and estimated cost.

    §8.1: "Zidian also exposes an interface for the users to modify R̃
    with suggested KV schemas, allowing human-in-the-loop schema design."
    """

    kv_schema: KVSchema
    rationale: str
    estimated_bytes: int
    supports: List[str] = field(default_factory=list)


def suggest_schemas(
    schema: DatabaseSchema,
    qcs_list: Sequence[QCS],
    existing: BaaVSchema,
    database: Optional[Database] = None,
) -> List[Suggestion]:
    """Suggest KV schemas covering QCS the existing BaaV schema misses.

    For each unsupported access pattern, proposes the T2B-initial schema
    that would support it, with a size estimate the user can weigh
    against the storage budget before adding it with ``BaaVSchema.add``.
    """
    existing_candidates = [
        _Candidate(s.relation, s.key, s.value) for s in existing
    ]
    designer = _Designer(schema, list(qcs_list), database, None)
    missing = [
        qcs
        for qcs in qcs_list
        if not designer._supports(existing_candidates, qcs)
    ]
    if not missing:
        return []
    proposed = _Designer(schema, missing, database, None)._initial()
    suggestions: List[Suggestion] = []
    seen_names = {s.name for s in existing}
    for candidate in proposed:
        supports = [
            str(qcs)
            for qcs in missing
            if designer._supports(
                existing_candidates + [candidate], qcs
            )
        ]
        name = _name(candidate)
        suffix = 1
        while name in seen_names:
            suffix += 1
            name = f"{_name(candidate)}_{suffix}"
        seen_names.add(name)
        suggestions.append(
            Suggestion(
                kv_schema=KVSchema(
                    name, candidate.relation, candidate.key, candidate.value
                ),
                rationale=(
                    f"covers {len(supports)} unsupported access pattern(s) "
                    f"keyed on ({', '.join(candidate.key)})"
                ),
                estimated_bytes=designer._estimate_bytes(candidate),
                supports=supports,
            )
        )
    return suggestions


@dataclass
class _Candidate:
    relation: RelationSchema
    key: Tuple[str, ...]
    value: Tuple[str, ...]

    @property
    def attrs(self) -> FrozenSet[str]:
        return frozenset(self.key) | frozenset(self.value)


class _Designer:
    def __init__(
        self,
        schema: DatabaseSchema,
        qcs_list: List[QCS],
        database: Optional[Database],
        budget_bytes: Optional[int],
    ) -> None:
        self.schema = schema
        self.qcs_list = qcs_list
        self.database = database
        self.budget_bytes = budget_bytes
        self.report = T2BReport(budget_bytes=budget_bytes)

    # -- step 1: initial schema from QCS ------------------------------------

    def _initial(self) -> List[_Candidate]:
        candidates: Dict[Tuple[str, Tuple[str, ...]], Set[str]] = {}
        for qcs in self.qcs_list:
            relation = self.schema.relation(qcs.relation)
            if qcs.x:
                key = tuple(sorted(qcs.x))
                value = set(qcs.z) - set(key)
            else:
                # scan pattern: key on the primary key (TaaV-like layout)
                pk = relation.primary_key or relation.attribute_names[:1]
                key = tuple(pk)
                value = set(qcs.z) - set(key)
            if not value:
                # a key-only pattern: split the key so the value is non-empty
                if len(key) > 1:
                    value = {key[-1]}
                    key = key[:-1]
                else:
                    others = [
                        a
                        for a in relation.attribute_names
                        if a not in set(key)
                    ]
                    if not others:
                        continue
                    value = {others[0]}
            slot = candidates.setdefault((relation.name, key), set())
            slot |= value
        out = []
        for (rel_name, key), value in sorted(candidates.items()):
            relation = self.schema.relation(rel_name)
            out.append(
                _Candidate(relation, key, tuple(sorted(value - set(key))))
            )
        return out

    # -- support check -----------------------------------------------------------

    @staticmethod
    def _supports(candidates: Sequence[_Candidate], qcs: QCS) -> bool:
        """Scan-free support: GET-style chase within the relation."""
        rel_candidates = [
            c for c in candidates if c.relation.name == qcs.relation
        ]
        if qcs.x:
            known: Set[str] = set(qcs.x)
            changed = True
            while changed:
                changed = False
                for candidate in rel_candidates:
                    if set(candidate.key) <= known and not (
                        candidate.attrs <= known
                    ):
                        known |= candidate.attrs
                        changed = True
            return qcs.z <= known
        # scan pattern: some candidate (chain) must cover Z starting from
        # a whole-instance scan
        for start in rel_candidates:
            known = set(start.attrs)
            changed = True
            while changed:
                changed = False
                for candidate in rel_candidates:
                    if set(candidate.key) <= known and not (
                        candidate.attrs <= known
                    ):
                        known |= candidate.attrs
                        changed = True
            if qcs.z <= known:
                return True
        return False

    def _all_supported(self, candidates: Sequence[_Candidate]) -> bool:
        return all(self._supports(candidates, q) for q in self.qcs_list)

    # -- size estimation -------------------------------------------------------

    def _estimate_bytes(self, candidate: _Candidate) -> int:
        if self.database is None:
            # schema-only estimate: 16 bytes per attribute per "row unit"
            return 16 * len(candidate.attrs)
        relation = self.database.relation(candidate.relation.name)
        attrs = list(candidate.key) + list(candidate.value)
        positions = relation.schema.indexes_of(attrs)
        total = 0
        for row in relation.rows:
            total += row_size(tuple(row[p] for p in positions)) + 8
        return total

    def _total_bytes(self, candidates: Sequence[_Candidate]) -> int:
        return sum(self._estimate_bytes(c) for c in candidates)

    # -- step 2: redundancy removal ---------------------------------------------

    def _remove_redundant(
        self, candidates: List[_Candidate]
    ) -> List[_Candidate]:
        changed = True
        while changed:
            changed = False
            # rank victims: biggest estimated size first (cheapest storage,
            # least efficiency impact when support is preserved anyway)
            ranked = sorted(
                range(len(candidates)),
                key=lambda i: -self._estimate_bytes(candidates[i]),
            )
            for index in ranked:
                rest = candidates[:index] + candidates[index + 1:]
                if rest and self._all_supported(rest):
                    self.report.removed.append(
                        _name(candidates[index])
                    )
                    candidates = rest
                    changed = True
                    break
        return candidates

    # -- step 3: budget-driven merging ----------------------------------------------

    def _merge_for_budget(
        self, candidates: List[_Candidate]
    ) -> List[_Candidate]:
        if self.budget_bytes is None:
            return candidates
        while self._total_bytes(candidates) > self.budget_bytes:
            pair = self._pick_merge_pair(candidates)
            if pair is None:
                break
            i, j = pair
            a, b = candidates[i], candidates[j]
            merged = self._merge(a, b)
            self.report.merged.append((_name(a), _name(b), _name(merged)))
            candidates = [
                c for k, c in enumerate(candidates) if k not in (i, j)
            ]
            candidates.append(merged)
        return candidates

    def _pick_merge_pair(
        self, candidates: List[_Candidate]
    ) -> Optional[Tuple[int, int]]:
        same_key: Optional[Tuple[int, int]] = None
        subset_key: Optional[Tuple[int, int]] = None
        for i in range(len(candidates)):
            for j in range(i + 1, len(candidates)):
                a, b = candidates[i], candidates[j]
                if a.relation.name != b.relation.name:
                    continue
                if a.key == b.key:
                    if same_key is None:
                        same_key = (i, j)
                elif set(a.key) <= set(b.key) or set(b.key) <= set(a.key):
                    if subset_key is None:
                        subset_key = (i, j)
        return same_key or subset_key

    @staticmethod
    def _merge(a: _Candidate, b: _Candidate) -> _Candidate:
        if set(b.key) < set(a.key):
            a, b = b, a
        key = a.key
        value = tuple(sorted((a.attrs | b.attrs) - set(key)))
        return _Candidate(a.relation, key, value)

    # -- entry ------------------------------------------------------------------

    def run(self) -> Tuple[BaaVSchema, T2BReport]:
        candidates = self._initial()
        if not candidates:
            raise SchemaError("T2B: no QCS produced any KV schema")
        candidates = self._remove_redundant(candidates)
        candidates = self._merge_for_budget(candidates)

        baav = BaaVSchema()
        names: Set[str] = set()
        for candidate in candidates:
            name = _name(candidate)
            suffix = 1
            while name in names:
                suffix += 1
                name = f"{_name(candidate)}_{suffix}"
            names.add(name)
            baav.add(
                KVSchema(
                    name, candidate.relation, candidate.key, candidate.value
                )
            )
        for qcs in self.qcs_list:
            self.report.supported[str(qcs)] = self._supports(
                candidates, qcs
            )
        self.report.estimated_bytes = self._total_bytes(candidates)
        self.report.within_budget = (
            self.budget_bytes is None
            or self.report.estimated_bytes <= self.budget_bytes
        )
        return baav, self.report


def _name(candidate: _Candidate) -> str:
    key = "_".join(candidate.key)
    return f"{candidate.relation.name.lower()}__{key}".lower()
