"""QCS — query column sets with known attributes, ``Z[X]`` (§8.1).

A QCS ``Z[X]`` abstracts an access pattern of historical query plans: a
plan touches attributes ``Z`` of a relation when values for ``X ⊆ Z`` are
already known (from constants or from attributes produced earlier in the
plan). T2B (module M4) turns a workload's QCS into a BaaV schema.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, List, Optional, Sequence, Set

from repro.sql.planner import BoundQuery
from repro.sql.spc import SPCAnalysis, analyze


@dataclass(frozen=True)
class QCS:
    """An access pattern ``Z[X]`` over one relation."""

    relation: str
    z: FrozenSet[str]
    x: FrozenSet[str]

    def __post_init__(self) -> None:
        if not self.x <= self.z:
            object.__setattr__(self, "z", self.z | self.x)

    def __str__(self) -> str:
        z = ",".join(sorted(self.z))
        x = ",".join(sorted(self.x))
        return f"{self.relation}.{{{z}}}[{{{x}}}]"


def extract_qcs(
    bound: BoundQuery, analysis: Optional[SPCAnalysis] = None
) -> List[QCS]:
    """Abstract one query into QCS, one per relation occurrence.

    The extraction simulates plan-order access: process aliases starting
    from those with constant bindings, following join edges; an attribute
    of an alias is "known" (in ``X``) when it is constant-bound or equated
    to an attribute of an already-processed alias.
    """
    analysis = analysis if analysis is not None else analyze(bound)
    aliases = list(analysis.atoms)

    def has_bound(alias: str) -> bool:
        prefix = alias + "."
        return any(
            attr.startswith(prefix)
            for term in analysis.live_terms()
            if term.is_bound
            for attr in term.attrs
        )

    ordered: List[str] = []
    remaining = sorted(aliases, key=lambda a: (not has_bound(a), a))
    edges = analysis.join_edges()

    def connected(alias: str, done: Sequence[str]) -> bool:
        return any(
            (alias == a and b in done) or (alias == b and a in done)
            for a, b in edges
        )

    while remaining:
        chosen = None
        for alias in remaining:
            if not ordered or connected(alias, ordered):
                chosen = alias
                break
        if chosen is None:
            chosen = remaining[0]
        remaining.remove(chosen)
        ordered.append(chosen)

    out: List[QCS] = []
    done: Set[str] = set()
    for alias in ordered:
        relation = analysis.atoms[alias]
        prefix = alias + "."
        z = {
            attr.split(".", 1)[1]
            for attr in analysis.x_attrs(alias)
        }
        known: Set[str] = set()
        for term in analysis.live_terms():
            members = [a for a in term.attrs if a.startswith(prefix)]
            if not members:
                continue
            if term.is_bound or any(
                a.split(".", 1)[0] in done
                for a in term.attrs
                if not a.startswith(prefix)
            ):
                known.update(m.split(".", 1)[1] for m in members)
        done.add(alias)
        if not z:
            continue
        out.append(QCS(relation, frozenset(z), frozenset(known & z)))
    return out


def extract_workload_qcs(
    bound_queries: Iterable[BoundQuery],
) -> List[QCS]:
    """Deduplicated QCS of a whole workload."""
    seen: Set[QCS] = set()
    out: List[QCS] = []
    for bound in bound_queries:
        for qcs in extract_qcs(bound):
            if qcs not in seen:
                seen.add(qcs)
                out.append(qcs)
    return out
