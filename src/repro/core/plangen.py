"""Chase-based KBA plan generation — module M2 of Zidian (§6.2).

Given a bound SQL query and the available BaaV schema, the generator
replays the GET chasing sequence (§6.1) to build a KBA plan:

1. Start from a *constant keyed block* holding the query's constant-bound
   terms (equality constants and IN-lists; their cartesian product is one
   small constant KV instance).
2. Greedily apply ``∝`` extensions whose probe keys are already
   materialized (through equality transitivity), interleaving selections
   (constants, residual predicates, term equalities) and projections that
   prune attributes no longer needed — exactly the T1/T2/T3 chain of
   Example 7.
3. Aliases the chain cannot cover are fetched with KV-instance scans
   (possibly extended within the alias following the ``clo`` chain) or, as
   the last resort, TaaV scans; these sub-plans join into the chain.
4. A trailing group-by (plus HAVING) becomes ``GroupK``/``SelectK``;
   everything above (ORDER BY / LIMIT / final projection / DISTINCT) runs
   on the flattened table by substituting a :class:`TableNode` into the
   original RA plan.

The generated plan is scan-free whenever the query is (Theorem 6): every
covered alias is reached through ``∝`` from constants only.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.baav.schema import BaaVSchema, KVSchema
from repro.errors import NotPreservedError, PlanError
from repro.index.selection import choose_for_alias
from repro.kba import plan as kp
from repro.sql import algebra, ast
from repro.sql.planner import BoundQuery, build_plan
from repro.sql.spc import SPCAnalysis, Term


@dataclass
class ZidianPlan:
    """A generated KBA plan plus the RA top it plugs back into."""

    #: KBA plan computing the SPJ core (and group-by/having when present)
    root: kp.KBANode
    #: RA plan of the whole query; ``replace_node`` is the subtree whose
    #: result the KBA root computes
    ra_plan: algebra.PlanNode
    replace_node: algebra.PlanNode
    bound: BoundQuery
    #: alias -> access mode: "chain" (scan-free ∝), "index" (secondary-
    #: index probe, also scan-free), "scan_kv", "taav"
    access: Dict[str, str] = field(default_factory=dict)
    scan_free: bool = False
    uses_stats: bool = False

    #: access modes whose data touch is bounded by the result, not the
    #: relation — the scan-free access paths
    BOUNDED_MODES = frozenset({"chain", "index"})

    def kv_schemas_used(self) -> List[str]:
        return kp.kv_schemas_used(self.root)

    def describe(self) -> str:
        lines = [
            f"scan_free={self.scan_free} access={self.access}",
            self.root.describe(),
        ]
        return "\n".join(lines)


class PlanGenerator:
    """Generates KBA plans for bound queries over a BaaV schema."""

    def __init__(
        self,
        baav: BaaVSchema,
        allow_taav_fallback: bool = True,
        use_stats: bool = True,
        index_catalog=None,
    ) -> None:
        self.baav = baav
        self.allow_taav_fallback = allow_taav_fallback
        self.use_stats = use_stats
        #: optional secondary-index catalog (repro.index.IndexManager):
        #: aliases the ∝ chain cannot cover are probed through an index
        #: instead of scanned when a usable one exists. Index probes
        #: fetch TaaV tuples, so they require the TaaV fallback store.
        self.index_catalog = index_catalog if allow_taav_fallback else None

    # -- public entry -------------------------------------------------------

    def generate(
        self, bound: BoundQuery, analysis: SPCAnalysis
    ) -> ZidianPlan:
        ra_plan = build_plan(bound)
        core, replace_node, groupby, having = _split_top(ra_plan)

        state = _ChainState(analysis, self.baav)
        covered = state.stable_coverage()
        root, access = self._build_core(analysis, state, covered)

        scan_free = all(
            mode in ZidianPlan.BOUNDED_MODES for mode in access.values()
        ) and bool(access)
        uses_stats = False

        if groupby is not None:
            stats_plan = self._try_stats_path(analysis, root, groupby, access)
            if stats_plan is not None:
                root = stats_plan
                uses_stats = True
            else:
                root = kp.GroupK(
                    root, tuple(groupby.keys), tuple(groupby.aggs)
                )
            if having is not None:
                root = kp.SelectK(root, having.predicate)

        plan = ZidianPlan(
            root=root,
            ra_plan=ra_plan,
            replace_node=replace_node,
            bound=bound,
            access=access,
            scan_free=scan_free and not uses_stats,
            uses_stats=uses_stats,
        )
        return plan

    # -- core construction -----------------------------------------------------

    def _build_core(
        self,
        analysis: SPCAnalysis,
        state: "_ChainState",
        covered: Set[str],
    ) -> Tuple[kp.KBANode, Dict[str, str]]:
        access: Dict[str, str] = {}
        chain_plan = None
        if covered:
            chain_plan = state.build_chain(covered)
            for alias in covered:
                access[alias] = "chain"

        subplans: List[Tuple[kp.KBANode, Set[str]]] = []
        if chain_plan is not None:
            subplans.append((chain_plan, set(state.avail)))

        for alias in sorted(set(analysis.atoms) - covered):
            subplan, attrs, mode = self._scan_subplan(analysis, alias)
            access[alias] = mode
            subplans.append((subplan, attrs))

        if not subplans:
            raise PlanError("query has no relations")

        root, root_attrs = subplans[0]
        remaining = subplans[1:]
        applied_residuals = set(state.applied_residuals)
        while remaining:
            # prefer a subplan connected to the current result
            index = 0
            best_pairs: List[Tuple[str, str]] = []
            for i, (_, attrs) in enumerate(remaining):
                pairs = _equi_pairs_between(analysis, root_attrs, attrs)
                if pairs:
                    index, best_pairs = i, pairs
                    break
            subplan, attrs = remaining.pop(index)
            root = kp.JoinK(root, subplan, tuple(best_pairs))
            root_attrs = root_attrs | attrs
            root = _apply_residuals(
                analysis, root, root_attrs, applied_residuals
            )
        return root, access

    def _scan_subplan(
        self, analysis: SPCAnalysis, alias: str
    ) -> Tuple[kp.KBANode, Set[str], str]:
        """Fetch an uncovered alias: index probe when a usable secondary
        index exists, else by scanning (§6.2 step 3)."""
        relation = analysis.atoms[alias]

        probe = self._index_subplan(analysis, alias, relation)
        if probe is not None:
            plan, attrs = probe
            plan, attrs = _apply_alias_predicates(
                analysis, alias, plan, attrs
            )
            return plan, attrs, "index"

        need = {
            a.split(".", 1)[1] for a in analysis.x_attrs(alias)
        }
        if not need:
            # pure existence check: any attribute will do
            schemas = self.baav.over_relation(relation)
            need = (
                {schemas[0].attributes[0]}
                if schemas
                else set()
            )

        candidates = self.baav.over_relation(relation)
        # single instance covering everything
        best_single = None
        for schema in candidates:
            if need <= set(schema.attributes):
                if best_single is None or schema.width < best_single.width:
                    best_single = schema
        plan: Optional[kp.KBANode] = None
        attrs: Set[str] = set()
        if best_single is not None:
            plan = kp.ScanKV(best_single.name, alias)
            attrs = {f"{alias}.{a}" for a in best_single.attributes}
        else:
            plan, attrs = self._scan_with_extensions(
                alias, relation, need, candidates
            )

        if plan is None:
            if not self.allow_taav_fallback:
                raise NotPreservedError(
                    f"alias {alias} ({relation}) is not covered by the "
                    f"BaaV schema and TaaV fallback is disabled"
                )
            plan = kp.TaaVScan(relation, alias)
            attrs = {
                f"{alias}.{a}"
                for a in analysis.bound.aliases[alias].attribute_names
            }
            mode = "taav"
        else:
            mode = "scan_kv"

        plan, attrs = _apply_alias_predicates(analysis, alias, plan, attrs)
        return plan, attrs, mode

    def _index_subplan(
        self, analysis: SPCAnalysis, alias: str, relation: str
    ) -> Optional[Tuple[kp.KBANode, Set[str]]]:
        """IndexProbe → multi_get for an alias with a usable index.

        Chosen over ScanKV/TaaVScan: the probe touches O(result) data.
        The probe yields the full TaaV tuple, so every attribute of the
        alias is materialized.
        """
        choice = choose_for_alias(
            analysis, alias, relation, self.index_catalog
        )
        if choice is None:
            return None
        plan = kp.IndexProbe(
            relation,
            alias,
            choice.attr,
            choice.kind,
            eq_values=choice.eq_values,
            lo=choice.lo,
            hi=choice.hi,
            lo_strict=choice.lo_strict,
            hi_strict=choice.hi_strict,
        )
        attrs = {
            f"{alias}.{a}"
            for a in analysis.bound.aliases[alias].attribute_names
        }
        return plan, attrs

    def _scan_with_extensions(
        self,
        alias: str,
        relation: str,
        need: Set[str],
        candidates: Sequence[KVSchema],
    ) -> Tuple[Optional[kp.KBANode], Set[str]]:
        """Scan one instance, then follow the clo chain with ∝ within the
        alias (probing by key, verified on the relation's primary key)."""
        if not candidates:
            return None, set()
        # start from the schema covering the most needed attributes,
        # requiring the relation's primary key so extensions stay
        # combination-correct (see DESIGN.md)
        def coverage(schema: KVSchema) -> int:
            return len(need & set(schema.attributes))

        starts = sorted(candidates, key=coverage, reverse=True)
        for start in starts:
            have = set(start.attributes)
            pk = set(start.relation.primary_key or ())
            if pk and not pk <= have:
                continue
            plan: kp.KBANode = kp.ScanKV(start.name, alias)
            used = {start.name}
            progress = True
            while not need <= have and progress:
                progress = False
                for schema in candidates:
                    if schema.name in used:
                        continue
                    if not set(schema.key) <= have:
                        continue
                    if pk and not pk <= (have | set(schema.key)):
                        continue
                    new_values = set(schema.value) - have
                    if not new_values:
                        continue
                    plan, have = _extend_same_alias(
                        plan, alias, schema, have
                    )
                    used.add(schema.name)
                    progress = True
                    break
            if need <= have:
                return plan, {f"{alias}.{a}" for a in have}
        return None, set()

    # -- statistics fast path ----------------------------------------------------

    def _try_stats_path(
        self,
        analysis: SPCAnalysis,
        root: kp.KBANode,
        groupby: algebra.GroupByNode,
        access: Dict[str, str],
    ) -> Optional[kp.KBANode]:
        """§8.2(2): single-instance scan grouped by its key -> block stats."""
        if not self.use_stats:
            return None
        if not isinstance(root, kp.ScanKV):
            return None
        alias = root.alias
        scanned = self.baav.get(root.kv_name)
        # the scan may have picked an equally-covering schema with a
        # different key; any sibling schema whose key matches the group
        # keys and whose values cover the aggregates works
        for schema in self.baav.over_relation(scanned.relation.name):
            expected_keys = tuple(f"{alias}.{a}" for a in schema.key)
            if tuple(groupby.keys) != expected_keys:
                continue
            if self._aggs_over(schema, alias, groupby.aggs):
                return kp.StatsGroup(schema.name, alias, tuple(groupby.aggs))
        return None

    @staticmethod
    def _aggs_over(schema: KVSchema, alias: str, aggs) -> bool:
        for spec in aggs:
            if spec.distinct or spec.arg is None:
                return False
            if spec.func not in ("SUM", "COUNT", "AVG", "MIN", "MAX"):
                return False
            if not isinstance(spec.arg, ast.Column):
                return False
            name = spec.arg.name
            if not name.startswith(alias + "."):
                return False
            if name.split(".", 1)[1] not in schema.value:
                return False
        return True


# --------------------------------------------------------------------------
# chain construction
# --------------------------------------------------------------------------


class _ChainState:
    """Greedy ∝-chain builder with a dry-run coverage fixpoint."""

    def __init__(self, analysis: SPCAnalysis, baav: BaaVSchema) -> None:
        self.analysis = analysis
        self.baav = baav
        self.needed = self._needed_attrs()
        self.avail: Set[str] = set()
        self.applied_residuals: Set[int] = set()

    def _needed_attrs(self) -> Set[str]:
        analysis = self.analysis
        needed = set(analysis.output_attrs) | set(analysis.residual_attrs)
        for term in analysis.live_terms():
            if term.is_bound or len(term.attrs) > 1:
                needed |= term.attrs
        return needed

    # -- constants ------------------------------------------------------------

    def _bound_terms(self) -> List[Term]:
        return [t for t in self.analysis.live_terms() if t.is_bound]

    def _constant_leaf(self) -> Optional[Tuple[kp.Constant, Set[str]]]:
        terms = self._bound_terms()
        if not terms:
            return None
        reps: List[str] = []
        value_sets: List[Tuple[object, ...]] = []
        for term in terms:
            reps.append(min(term.attrs))
            if term.has_constant:
                value_sets.append((term.constant,))
            else:
                value_sets.append(tuple(term.in_values or ()))
        keys = tuple(itertools.product(*value_sets))
        return kp.Constant(tuple(reps), keys), set(reps)

    # -- candidate extends ---------------------------------------------------------

    def _supplier(self, attr: str, avail: Set[str]) -> Optional[str]:
        if attr in avail:
            return attr
        term = self.analysis.term_of(attr)
        if term is None:
            return None
        for member in sorted(term.attrs):
            if member in avail:
                return member
        return None

    def _candidates(
        self,
        avail: Set[str],
        fetched: Dict[str, Set[str]],
        used: Set[Tuple[str, str]],
        allowed_aliases: Optional[Set[str]],
    ) -> List[Tuple[str, KVSchema, List[Tuple[str, str]]]]:
        out = []
        for alias in sorted(self.analysis.atoms):
            if allowed_aliases is not None and alias not in allowed_aliases:
                continue
            relation = self.analysis.atoms[alias]
            for schema in self.baav.over_relation(relation):
                if (alias, schema.name) in used:
                    continue
                adds_something = any(
                    f"{alias}.{a}" not in avail for a in schema.attributes
                )
                if not adds_something:
                    continue
                if alias in fetched:
                    # secondary fetch: probe keys must come from the alias's
                    # own *currently materialized* attributes and the
                    # relation's primary key must be pinned down
                    # (combination correctness)
                    if not all(
                        f"{alias}.{k}" in avail for k in schema.key
                    ):
                        continue
                    have = {
                        a
                        for a in schema.relation.attribute_names
                        if f"{alias}.{a}" in avail
                    }
                    pk = set(schema.relation.primary_key or ())
                    if not pk:
                        continue
                    if not pk <= (have | set(schema.key)):
                        continue
                    if not pk <= set(schema.attributes):
                        continue
                    probes = [
                        (k, f"{alias}.{k}") for k in schema.key
                    ]
                else:
                    probes = []
                    ok = True
                    for key_attr in schema.key:
                        supplier = self._supplier(
                            f"{alias}.{key_attr}", avail
                        )
                        if supplier is None:
                            ok = False
                            break
                        probes.append((key_attr, supplier))
                    if not ok:
                        continue
                if (
                    alias in fetched
                    and self._score(alias, schema, avail)[0] == 0
                ):
                    # a secondary fetch that materializes nothing needed
                    # downstream is pure overhead; a *first* fetch is still
                    # required even with zero gain — the alias acts as an
                    # existence/multiplicity check (e.g. V.vehicle_id = c)
                    continue
                out.append((alias, schema, probes))
        return out

    def _score(
        self, alias: str, schema: KVSchema, avail: Set[str]
    ) -> Tuple[int, int]:
        gain_needed = sum(
            1
            for a in schema.attributes
            if f"{alias}.{a}" in self.needed and f"{alias}.{a}" not in avail
        )
        gain_any = sum(
            1 for a in schema.attributes if f"{alias}.{a}" not in avail
        )
        return (gain_needed, gain_any, -schema.width)

    # -- dry-run coverage fixpoint -------------------------------------------------

    def _dry_run(self, allowed: Optional[Set[str]]) -> Set[str]:
        """Which aliases end up fully covered by a chain over ``allowed``."""
        leaf = self._constant_leaf()
        if leaf is None:
            return set()
        avail = set(leaf[1])
        fetched: Dict[str, Set[str]] = {}
        used: Set[Tuple[str, str]] = set()
        while True:
            candidates = self._candidates(avail, fetched, used, allowed)
            if not candidates:
                break
            alias, schema, probes = max(
                candidates,
                key=lambda c: (self._score(c[0], c[1], avail), c[0], c[1].name),
            )
            used.add((alias, schema.name))
            fetched.setdefault(alias, set()).update(schema.attributes)
            fetched[alias].update(k for k, _ in probes)
            for attr in schema.attributes:
                avail.add(f"{alias}.{attr}")
            # equality transitivity: everything in a materialized term is
            # available as a supplier
            for attr in list(avail):
                term = self.analysis.term_of(attr)
                if term is not None:
                    avail |= {m for m in term.attrs}
        covered = set()
        for alias in self.analysis.atoms:
            x_attrs = self.analysis.x_attrs(alias)
            if not x_attrs:
                continue
            if alias in fetched and x_attrs <= avail:
                covered.add(alias)
        return covered

    def stable_coverage(self) -> Set[str]:
        """Fixpoint: restrict the chain to aliases it can fully cover."""
        allowed: Optional[Set[str]] = None
        while True:
            covered = self._dry_run(allowed)
            if allowed is not None and covered == allowed:
                return covered
            if not covered:
                return set()
            allowed = covered

    # -- real chain ------------------------------------------------------------------

    def build_chain(self, allowed: Set[str]) -> kp.KBANode:
        analysis = self.analysis
        leaf = self._constant_leaf()
        if leaf is None:
            raise PlanError("chain requested without constant bindings")
        plan, avail = leaf
        plan_node: kp.KBANode = plan
        fetched: Dict[str, Set[str]] = {}
        used: Set[Tuple[str, str]] = set()

        # equality availability (suppliers) is broader than materialized
        supplier_avail = set(avail)

        while True:
            candidates = self._candidates(
                supplier_avail, fetched, used, allowed
            )
            if not candidates:
                break
            alias, schema, probes = max(
                candidates,
                key=lambda c: (
                    self._score(c[0], c[1], supplier_avail),
                    c[0],
                    c[1].name,
                ),
            )
            used.add((alias, schema.name))
            plan_node, avail = self._apply_extend(
                plan_node, avail, alias, schema, probes, fetched
            )
            supplier_avail = set(avail)
            for attr in avail:
                term = analysis.term_of(attr)
                if term is not None:
                    supplier_avail |= term.attrs

        # materialize needed attributes whose term-mate is available
        copies: List[Tuple[str, str]] = []
        for attr in sorted(self.needed - avail):
            alias = attr.split(".", 1)[0]
            if alias not in fetched:
                continue
            supplier = self._supplier(attr, avail)
            if supplier is not None:
                copies.append((supplier, attr))
                avail.add(attr)
        if copies:
            plan_node = kp.CopyK(plan_node, tuple(copies))

        self.avail = avail
        return plan_node

    def _apply_extend(
        self,
        plan: kp.KBANode,
        avail: Set[str],
        alias: str,
        schema: KVSchema,
        probes: List[Tuple[str, str]],
        fetched: Dict[str, Set[str]],
    ) -> Tuple[kp.KBANode, Set[str]]:
        analysis = self.analysis
        # resolve probe suppliers against *materialized* attributes
        on: List[Tuple[str, str]] = []
        for key_attr, supplier in probes:
            if supplier not in avail:
                resolved = self._supplier(supplier, avail)
                if resolved is None:
                    raise PlanError(
                        f"probe supplier {supplier} not materialized"
                    )
                supplier = resolved
            on.append((supplier, key_attr))

        expose: List[Tuple[str, str]] = []
        for key_attr in schema.key:
            qualified = f"{alias}.{key_attr}"
            if qualified not in avail and qualified in self.needed:
                expose.append((key_attr, qualified))

        rename: List[Tuple[str, str]] = []
        dup_checks: List[Tuple[str, str]] = []  # (original, temp)
        for value_attr in schema.value:
            qualified = f"{alias}.{value_attr}"
            if qualified in avail:
                temp = f"{qualified}#dup"
                rename.append((value_attr, temp))
                dup_checks.append((qualified, temp))

        node: kp.KBANode = kp.Extend(
            plan,
            schema.name,
            alias,
            tuple(on),
            tuple(expose),
            tuple(rename),
        )
        new_attrs = [name for _, name in expose]
        for value_attr in schema.value:
            qualified = f"{alias}.{value_attr}"
            if qualified not in avail:
                new_attrs.append(qualified)
        avail = set(avail) | set(new_attrs) | {t for _, t in rename}

        # duplicate-fetch verification, then drop the temporaries
        preds: List[ast.Expr] = [
            ast.Cmp("=", ast.Column(orig), ast.Column(temp))
            for orig, temp in dup_checks
        ]

        # enforce term constraints on newly materialized value attributes
        exposed_names = {name for _, name in expose}
        for attr in new_attrs:
            if attr in exposed_names:
                continue  # equals its probe supplier by construction
            term = analysis.term_of(attr)
            if term is None:
                continue
            if term.has_constant:
                preds.append(
                    ast.Cmp("=", ast.Column(attr), ast.Lit(term.constant))
                )
            elif term.in_values is not None:
                preds.append(
                    ast.InList(ast.Column(attr), list(term.in_values))
                )
            mates = sorted(
                m for m in term.attrs if m in avail and m != attr
                and m not in new_attrs
            )
            if mates:
                preds.append(
                    ast.Cmp("=", ast.Column(attr), ast.Column(mates[0]))
                )
        # equalities among multiple new attrs of one term
        by_term: Dict[int, List[str]] = {}
        for attr in new_attrs:
            term = analysis.term_of(attr)
            if term is not None:
                by_term.setdefault(term.term_id, []).append(attr)
        for members in by_term.values():
            for extra in members[1:]:
                preds.append(
                    ast.Cmp("=", ast.Column(members[0]), ast.Column(extra))
                )
        if preds:
            node = kp.SelectK(node, ast.make_and(preds))

        # residual predicates that just became applicable
        node = _apply_residuals(
            analysis, node, avail, self.applied_residuals
        )

        # prune: keep only needed attributes (drops #dup temporaries)
        keep = tuple(
            a for a in sorted(avail) if a in self.needed
        )
        if keep and set(keep) != avail:
            node = kp.ProjectK(node, keep)
            avail = set(keep)

        fetched.setdefault(alias, set()).update(schema.attributes)
        return node, avail


# --------------------------------------------------------------------------
# helpers
# --------------------------------------------------------------------------


def _apply_residuals(
    analysis: SPCAnalysis,
    node: kp.KBANode,
    avail: Set[str],
    applied: Set[int],
) -> kp.KBANode:
    preds: List[ast.Expr] = []
    for index, residual in enumerate(analysis.residuals):
        if index in applied:
            continue
        cols = {c for c in residual.columns() if "." in c}
        if cols <= avail:
            preds.append(residual)
            applied.add(index)
    if preds:
        return kp.SelectK(node, ast.make_and(preds))
    return node


def _apply_alias_predicates(
    analysis: SPCAnalysis,
    alias: str,
    plan: kp.KBANode,
    attrs: Set[str],
) -> Tuple[kp.KBANode, Set[str]]:
    """Constants and alias-local residuals on a scanned alias."""
    preds: List[ast.Expr] = []
    prefix = alias + "."
    for term in analysis.live_terms():
        for attr in term.attrs:
            if not attr.startswith(prefix) or attr not in attrs:
                continue
            if term.has_constant:
                preds.append(
                    ast.Cmp("=", ast.Column(attr), ast.Lit(term.constant))
                )
            # intra-alias equalities within one term
            mates = sorted(
                m
                for m in term.attrs
                if m != attr and m.startswith(prefix) and m in attrs
            )
            for mate in mates:
                if attr < mate:
                    preds.append(
                        ast.Cmp("=", ast.Column(attr), ast.Column(mate))
                    )
    for residual in analysis.residuals:
        cols = {c for c in residual.columns() if "." in c}
        if cols and cols <= attrs and all(
            c.startswith(prefix) for c in cols
        ):
            preds.append(residual)
    if preds:
        plan = kp.SelectK(plan, ast.make_and(preds))
    return plan, attrs


def _extend_same_alias(
    plan: kp.KBANode,
    alias: str,
    schema: KVSchema,
    have: Set[str],
) -> Tuple[kp.KBANode, Set[str]]:
    """Extend a scanned alias with another schema of the same relation."""
    on = tuple((f"{alias}.{k}", k) for k in schema.key)
    rename: List[Tuple[str, str]] = []
    dup_checks: List[Tuple[str, str]] = []
    new_attrs: List[str] = []
    for value_attr in schema.value:
        if value_attr in have:
            temp = f"{alias}.{value_attr}#dup"
            rename.append((value_attr, temp))
            dup_checks.append((f"{alias}.{value_attr}", temp))
        else:
            new_attrs.append(value_attr)
    node: kp.KBANode = kp.Extend(
        plan, schema.name, alias, on, (), tuple(rename)
    )
    if dup_checks:
        preds = [
            ast.Cmp("=", ast.Column(orig), ast.Column(temp))
            for orig, temp in dup_checks
        ]
        node = kp.SelectK(node, ast.make_and(preds))
        keep = tuple(
            sorted({f"{alias}.{a}" for a in have} | {
                f"{alias}.{a}" for a in new_attrs
            })
        )
        node = kp.ProjectK(node, keep)
    return node, have | set(new_attrs)


def _equi_pairs_between(
    analysis: SPCAnalysis, left: Set[str], right: Set[str]
) -> List[Tuple[str, str]]:
    pairs: List[Tuple[str, str]] = []
    for term in analysis.live_terms():
        lefts = sorted(term.attrs & left)
        rights = sorted(term.attrs & right)
        if lefts and rights:
            pairs.append((lefts[0], rights[0]))
    return pairs


def _split_top(
    ra_plan: algebra.PlanNode,
) -> Tuple[
    algebra.PlanNode,
    algebra.PlanNode,
    Optional[algebra.GroupByNode],
    Optional[algebra.SelectNode],
]:
    """Find the SPJ core of an RA plan and the group-by/having above it.

    Returns ``(core, replace_node, groupby, having)``: ``replace_node`` is
    the subtree whose result the KBA plan computes (core, or group-by, or
    having-select) — the system substitutes a TableNode there.
    """
    core_types = (
        algebra.ScanNode,
        algebra.SelectNode,
        algebra.JoinNode,
        algebra.CrossNode,
    )

    def is_core(node: algebra.PlanNode) -> bool:
        if not isinstance(node, core_types):
            return False
        return all(is_core(c) for c in node.children())

    # descend through unary top operators to the core
    path: List[algebra.PlanNode] = []
    node = ra_plan
    while not is_core(node):
        children = node.children()
        if len(children) != 1:
            raise PlanError(
                f"cannot locate SPJ core below {type(node).__name__}"
            )
        path.append(node)
        node = children[0]
    core = node

    groupby: Optional[algebra.GroupByNode] = None
    having: Optional[algebra.SelectNode] = None
    replace_node: algebra.PlanNode = core
    # walk back up: GroupBy directly above the core, optional Select above it
    if path and isinstance(path[-1], algebra.GroupByNode):
        groupby = path[-1]
        replace_node = groupby
        if len(path) >= 2 and isinstance(path[-2], algebra.SelectNode):
            having = path[-2]
            replace_node = having
    return core, replace_node, groupby, having


def substitute_table(
    ra_plan: algebra.PlanNode,
    target: algebra.PlanNode,
    table,
) -> algebra.PlanNode:
    """Replace ``target`` inside ``ra_plan`` with a TableNode over ``table``."""
    replacement = algebra.TableNode(table)
    if ra_plan is target:
        return replacement

    def rebuild(node: algebra.PlanNode) -> algebra.PlanNode:
        if node is target:
            return replacement
        for attr in ("child", "left", "right"):
            child = getattr(node, attr, None)
            if child is not None and isinstance(child, algebra.PlanNode):
                setattr(node, attr, rebuild(child))
        return node

    return rebuild(ra_plan)
