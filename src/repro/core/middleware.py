"""The Zidian middleware facade — modules M1 + M2 glued together (§5.1).

Workflow for a query Q over relational schema R, given BaaV schema R̃:

1. M1: decide whether Q can be answered over R̃ (Condition II on min(Q));
   decide scan-freeness (Condition III) and boundedness (degrees).
2. M2: generate a KBA plan — scan-free whenever Q is, falling back to KV
   instance scans (and, when allowed, TaaV scans) for uncovered parts.

Parallelization (M3) lives in :mod:`repro.parallel`; schema design (M4) in
:mod:`repro.core.t2b`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from repro.baav.schema import BaaVSchema
from repro.baav.store import BaaVStore
from repro.core import preservation, scanfree
from repro.core.plangen import PlanGenerator, ZidianPlan
from repro.relational.schema import DatabaseSchema
from repro.sql.minimize import minimize
from repro.sql.parser import parse
from repro.sql.planner import BoundQuery, bind
from repro.sql.spc import SPCAnalysis, analyze


@dataclass
class QueryDecision:
    """M1's verdict for one query."""

    bound: BoundQuery
    analysis: SPCAnalysis
    minimized: SPCAnalysis
    preservation: preservation.ResultPreservationReport
    scan_free: scanfree.ScanFreeReport
    bounded: Optional[scanfree.BoundedReport] = None

    @property
    def answerable(self) -> bool:
        """Can Q be answered entirely over the BaaV store?"""
        return self.preservation.preserved

    @property
    def is_scan_free(self) -> bool:
        return self.scan_free.scan_free

    @property
    def is_bounded(self) -> bool:
        return self.bounded is not None and self.bounded.bounded

    def summary(self) -> str:
        parts = [
            f"answerable={self.answerable}",
            f"scan_free={self.is_scan_free}",
        ]
        if self.bounded is not None:
            parts.append(f"bounded={self.bounded.bounded}")
        if not self.preservation.preserved:
            parts.append(f"missing={self.preservation.missing}")
        return " ".join(parts)


class Zidian:
    """The middleware: query checking and KBA plan generation."""

    def __init__(
        self,
        schema: DatabaseSchema,
        baav_schema: BaaVSchema,
        store: Optional[BaaVStore] = None,
        degree_bound: int = scanfree.DEFAULT_DEGREE_BOUND,
        allow_taav_fallback: bool = True,
        use_stats: bool = True,
        index_catalog=None,
    ) -> None:
        self.schema = schema
        self.baav_schema = baav_schema
        self.store = store
        self.degree_bound = degree_bound
        #: live secondary-index catalog (repro.index.IndexManager):
        #: consulted at decide/plan time, so indexes created or dropped
        #: after construction are seen immediately. Index probes fetch
        #: TaaV tuples, so without the TaaV fallback the generator
        #: cannot use an index — the verdict must not claim it either.
        self.index_catalog = (
            index_catalog if allow_taav_fallback else None
        )
        self.generator = PlanGenerator(
            baav_schema,
            allow_taav_fallback=allow_taav_fallback,
            use_stats=use_stats,
            index_catalog=index_catalog,
        )

    # -- M1 ------------------------------------------------------------------

    def data_preserving(self) -> preservation.PreservationReport:
        """Condition (I) for the whole database schema."""
        return preservation.is_data_preserving(self.schema, self.baav_schema)

    def _bound(self, query: Union[str, BoundQuery]) -> BoundQuery:
        if isinstance(query, BoundQuery):
            return query
        return bind(parse(query), self.schema)

    def decide(self, query: Union[str, BoundQuery]) -> QueryDecision:
        """Run the M1 checks for one query."""
        bound = self._bound(query)
        analysis = analyze(bound)
        minimized = minimize(analysis)
        pres = preservation.is_result_preserving(
            analysis, self.baav_schema, minimized
        )
        sf_report = scanfree.is_scan_free(
            analysis,
            self.baav_schema,
            minimized,
            index_catalog=self.index_catalog,
        )
        bounded = None
        if self.store is not None:
            bounded = scanfree.is_bounded(
                analysis,
                self.store,
                degree_bound=self.degree_bound,
                scan_free_report=sf_report,
            )
        return QueryDecision(
            bound=bound,
            analysis=analysis,
            minimized=minimized,
            preservation=pres,
            scan_free=sf_report,
            bounded=bounded,
        )

    # -- M2 ------------------------------------------------------------------

    def plan(
        self, query: Union[str, BoundQuery]
    ) -> "tuple[ZidianPlan, QueryDecision]":
        """Decide and generate the KBA plan for a query."""
        decision = self.decide(query)
        plan = self.generator.generate(decision.bound, decision.analysis)
        return plan, decision

    # -- diagnostics ------------------------------------------------------------

    def explain(self, query: Union[str, BoundQuery]) -> str:
        """Human-readable account of the M1 checks and the M2 plan.

        Shows the minimized atoms, per-alias X attributes, the GET
        chasing sequence, the Condition (III) witnesses, and the
        generated KBA plan — the trace of Example 7.
        """
        plan, decision = self.plan(query)
        lines = [f"query    : {decision.bound.stmt}"]
        lines.append(f"verdict  : {decision.summary()}")
        minimized = decision.minimized
        lines.append(
            "min(Q)   : " + ", ".join(
                f"{alias}:{rel}" for alias, rel in sorted(
                    minimized.atoms.items()
                )
            )
        )
        for alias in sorted(minimized.atoms):
            x_attrs = ", ".join(sorted(minimized.x_attrs(alias)))
            lines.append(f"  X[{alias}] = {{{x_attrs}}}")
        get = decision.scan_free.get
        if get is not None and get.steps:
            lines.append("chase    :")
            for step in get.steps:
                probes = ", ".join(
                    f"{kv}<-{src}" for kv, src in step.probes
                )
                lines.append(
                    f"  ∝ {step.schema.name} [{step.alias}] on ({probes})"
                )
        if decision.scan_free.witnesses:
            lines.append("witnesses:")
            for alias, entry in sorted(decision.scan_free.witnesses.items()):
                lines.append(f"  {alias}: clo({entry.schema.name})")
        if decision.scan_free.index_covered:
            lines.append("indexes  :")
            for alias, desc in sorted(
                decision.scan_free.index_covered.items()
            ):
                lines.append(f"  {alias}: {desc}")
        if decision.scan_free.missing:
            lines.append(
                f"uncovered: {sorted(decision.scan_free.missing)}"
            )
        if decision.bounded is not None and decision.bounded.degrees:
            degrees = ", ".join(
                f"{name}={deg}"
                for name, deg in sorted(decision.bounded.degrees.items())
            )
            lines.append(f"degrees  : {degrees} "
                         f"(bound {decision.bounded.degree_bound})")
        lines.append(f"access   : {plan.access}")
        lines.append("plan     :")
        for line in plan.root.describe().splitlines():
            lines.append("  " + line)
        return "\n".join(lines)
