"""The attribute closure ``clo(R̃, R̃)`` of §5.2 (Condition (I)).

``clo`` is defined inductively:

1. ``att(R̃) ⊆ clo(R̃, R̃)``;
2. if ``pk(R̃′) ⊆ clo(R̃, R̃)`` for some ``R̃′ ∈ R̃`` then
   ``att(R̃′) ⊆ clo(R̃, R̃)``.

Attributes are qualified by relation name (``REL.attr``) since the paper
assumes each KV schema draws its attributes from one relation schema.
Chaining therefore happens among KV schemas of the same relation unless two
relations deliberately share qualified attribute names (they cannot here).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Set

from repro.baav.schema import BaaVSchema, KVSchema


def _qualified(schema: KVSchema, attrs: Iterable[str]) -> Set[str]:
    relation = schema.relation.name
    return {f"{relation}.{a}" for a in attrs}


def attributes_of(schema: KVSchema) -> Set[str]:
    """``att(R̃)`` as relation-qualified names."""
    return _qualified(schema, schema.attributes)


def primary_key_of(schema: KVSchema) -> Set[str]:
    """``pk(R̃)`` as relation-qualified names."""
    return _qualified(schema, schema.primary_key)


def closure(start: KVSchema, schemas: Iterable[KVSchema]) -> FrozenSet[str]:
    """Compute ``clo(start, schemas)`` over relation-qualified attributes."""
    pool: List[KVSchema] = list(schemas)
    clo: Set[str] = set(attributes_of(start))
    changed = True
    while changed:
        changed = False
        for candidate in pool:
            candidate_attrs = attributes_of(candidate)
            if candidate_attrs <= clo:
                continue
            if primary_key_of(candidate) <= clo:
                clo |= candidate_attrs
                changed = True
    return frozenset(clo)


def closures(baav: BaaVSchema) -> Dict[str, FrozenSet[str]]:
    """``clo(R̃, R̃)`` for every KV schema of a BaaV schema."""
    pool = list(baav)
    return {schema.name: closure(schema, pool) for schema in pool}
