"""Scan-free and bounded query analysis — module M2 of Zidian (§6.1).

Implements the paper's characterization:

* ``GET(Q, R̃)`` — retrievable attributes: the fixpoint of
  (a) constant-bound attributes (extended here with IN-lists: finitely many
  constants still mean finitely many gets),
  (b) equality transitivity, and
  (c) key-to-value propagation per KV schema.
* ``VC(Q, R̃)`` — verifiable combinations: per relation occurrence, the
  closures of the KV schemas whose attributes are all retrievable.
* Condition (III), Theorem 4: Q is scan-free over ``R̃`` iff for every
  relation occurrence of ``min(Q)`` its ``X`` attributes sit inside some
  member of ``VC(min(Q), R̃)``.
* Boundedness (§6.1 end): scan-free plus instance degrees below a constant.

``GET`` is computed with a *derivation log* — the chasing sequence of §6.2
— which the plan generator replays to build scan-free KBA plans.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.baav.schema import BaaVSchema, KVSchema
from repro.baav.store import BaaVStore
from repro.index.selection import choose_for_alias
from repro.sql.minimize import minimize
from repro.sql.spc import SPCAnalysis

DEFAULT_DEGREE_BOUND = 64


@dataclass
class ChaseStep:
    """One application of GET rule (c): extend through a KV schema."""

    alias: str
    schema: KVSchema
    #: for each key attribute of the schema (in key order), the qualified
    #: query attribute that supplies its value (a GET member of its term)
    probes: Tuple[Tuple[str, str], ...]  # (kv key attr, supplying query attr)
    #: attributes newly added to GET by this step
    added: Tuple[str, ...]


@dataclass
class GetResult:
    """GET(Q, R̃) plus its derivation."""

    attrs: FrozenSet[str]
    steps: List[ChaseStep]
    #: attrs retrievable per alias (unqualified attribute names)
    per_alias: Dict[str, Set[str]] = field(default_factory=dict)


def compute_get(analysis: SPCAnalysis, baav: BaaVSchema) -> GetResult:
    """Compute GET(Q, R̃) with its chasing sequence (§6.1 rules a–c)."""
    get: Set[str] = set()
    steps: List[ChaseStep] = []

    # rule (a): constant-bound attributes (plus IN-bound, see module doc),
    # closed under rule (b) since terms already merge equated attributes.
    for term in analysis.live_terms():
        if term.is_bound:
            get |= term.attrs

    def term_supplier(attr: str) -> Optional[str]:
        """A GET member of ``attr``'s term (rule (b) transitivity)."""
        if attr in get:
            return attr
        term = analysis.term_of(attr)
        if term is None:
            return None
        for member in term.attrs:
            if member in get:
                return member
        return None

    changed = True
    while changed:
        changed = False
        for alias, relation in sorted(analysis.atoms.items()):
            for schema in baav.over_relation(relation):
                probes: List[Tuple[str, str]] = []
                ok = True
                for key_attr in schema.key:
                    qualified = f"{alias}.{key_attr}"
                    supplier = term_supplier(qualified)
                    if supplier is None:
                        ok = False
                        break
                    probes.append((key_attr, supplier))
                if not ok:
                    continue
                added: List[str] = []
                for attr in schema.attributes:
                    qualified = f"{alias}.{attr}"
                    if qualified not in get:
                        added.append(qualified)
                        get.add(qualified)
                        # rule (b): propagate through the attr's term
                        term = analysis.term_of(qualified)
                        if term is not None:
                            for member in term.attrs:
                                if member not in get:
                                    get.add(member)
                                    added.append(member)
                if added:
                    steps.append(
                        ChaseStep(alias, schema, tuple(probes), tuple(added))
                    )
                    changed = True

    per_alias: Dict[str, Set[str]] = {a: set() for a in analysis.atoms}
    for attr in get:
        alias = attr.split(".", 1)[0]
        if alias in per_alias:
            per_alias[alias].add(attr.split(".", 1)[1])
    return GetResult(frozenset(get), steps, per_alias)


@dataclass
class VCEntry:
    """One member of VC(Q, R̃): a verifiable attribute combination."""

    alias: str
    schema: KVSchema  # the S̃ whose closure this is
    attrs: FrozenSet[str]  # qualified attributes of `alias`


def compute_vc(
    analysis: SPCAnalysis, baav: BaaVSchema, get: Optional[GetResult] = None
) -> List[VCEntry]:
    """Compute VC(Q, R̃) per §6.1.

    ``R̃_Q`` holds the (alias, KV schema) pairs whose attributes are all in
    GET; each entry's attribute set is the closure of one member within
    ``R̃_Q`` restricted to its alias (clo chains through primary keys).
    """
    get = get if get is not None else compute_get(analysis, baav)
    entries: List[VCEntry] = []
    for alias, relation in analysis.atoms.items():
        retrievable = get.per_alias.get(alias, set())
        candidates = [
            s
            for s in baav.over_relation(relation)
            if set(s.attributes) <= retrievable
        ]
        for start in candidates:
            clo: Set[str] = set(start.attributes)
            changed = True
            while changed:
                changed = False
                for other in candidates:
                    other_attrs = set(other.attributes)
                    if other_attrs <= clo:
                        continue
                    if set(other.primary_key) <= clo:
                        clo |= other_attrs
                        changed = True
            entries.append(
                VCEntry(
                    alias,
                    start,
                    frozenset(f"{alias}.{a}" for a in clo),
                )
            )
    return entries


@dataclass
class ScanFreeReport:
    """Outcome of the Condition (III) check (index-extended)."""

    scan_free: bool
    #: alias -> witnessing VC entry (when covered)
    witnesses: Dict[str, VCEntry] = field(default_factory=dict)
    #: aliases of min(Q) that are not covered
    missing: List[str] = field(default_factory=list)
    #: alias -> index access-path description, for aliases the BaaV
    #: schema leaves uncovered but a secondary index makes bounded
    index_covered: Dict[str, str] = field(default_factory=dict)
    get: Optional[GetResult] = None
    vc: List[VCEntry] = field(default_factory=list)
    minimal_aliases: FrozenSet[str] = frozenset()


def is_scan_free(
    analysis: SPCAnalysis,
    baav: BaaVSchema,
    minimized: Optional[SPCAnalysis] = None,
    index_catalog=None,
) -> ScanFreeReport:
    """Condition (III) over ``min(Q)`` (Theorems 4 and 5), extended with
    secondary indexes.

    An alias with an empty ``X`` set (a pure existence check) is never
    scan-free: nothing pins down which blocks to fetch.

    ``index_catalog`` (a :class:`repro.index.IndexManager`, or anything
    with its catalog surface) widens the verdict: an alias Condition
    (III) leaves uncovered still counts as scan-free when one of its
    attributes carries a usable secondary index — an equality-bound
    attribute with a hash/ordered index, or a range residual over an
    ordered index. The index probe retrieves whole tuples by primary
    key, so coverage of the alias's ``X`` attributes is automatic.
    """
    minimal = minimized if minimized is not None else minimize(analysis)
    get = compute_get(minimal, baav)
    vc = compute_vc(minimal, baav, get)
    report = ScanFreeReport(
        scan_free=True,
        get=get,
        vc=vc,
        minimal_aliases=frozenset(minimal.atoms),
    )
    by_alias: Dict[str, List[VCEntry]] = {}
    for entry in vc:
        by_alias.setdefault(entry.alias, []).append(entry)
    for alias in minimal.atoms:
        x_attrs = minimal.x_attrs(alias)
        witness = None
        if x_attrs:
            for entry in by_alias.get(alias, ()):
                if x_attrs <= entry.attrs:
                    witness = entry
                    break
        if witness is not None:
            report.witnesses[alias] = witness
            continue
        choice = (
            choose_for_alias(
                minimal, alias, minimal.atoms[alias], index_catalog
            )
            if index_catalog is not None
            else None
        )
        if choice is not None:
            report.index_covered[alias] = choice.describe()
        else:
            report.scan_free = False
            report.missing.append(alias)
    return report


@dataclass
class BoundedReport:
    bounded: bool
    scan_free: bool
    degree_bound: int
    #: KV schema name -> observed degree for the instances involved
    degrees: Dict[str, int] = field(default_factory=dict)


def is_bounded(
    analysis: SPCAnalysis,
    store: BaaVStore,
    degree_bound: int = DEFAULT_DEGREE_BOUND,
    scan_free_report: Optional[ScanFreeReport] = None,
) -> BoundedReport:
    """Boundedness check (§6.1): scan-free plus bounded instance degrees."""
    report = (
        scan_free_report
        if scan_free_report is not None
        else is_scan_free(analysis, store.schema)
    )
    degrees: Dict[str, int] = {}
    if not report.scan_free:
        return BoundedReport(False, False, degree_bound, degrees)
    if report.index_covered:
        # index probes are result-bounded but not constant-bounded: a
        # posting list / bucket walk can grow with the data, so an
        # index-covered query is scan-free without being bounded
        return BoundedReport(False, True, degree_bound, degrees)
    names: Set[str] = set()
    for entry in report.witnesses.values():
        names.add(entry.schema.name)
    if report.get is not None:
        for step in report.get.steps:
            names.add(step.schema.name)
    bounded = True
    for name in sorted(names):
        degree = store.instance(name).degree
        degrees[name] = degree
        if degree > degree_bound:
            bounded = False
    return BoundedReport(bounded, True, degree_bound, degrees)
