"""Zidian core: preservation, scan-free analysis, planning, QCS, T2B."""

from repro.core.closure import closure, closures
from repro.core.middleware import QueryDecision, Zidian
from repro.core.plangen import PlanGenerator, ZidianPlan, substitute_table
from repro.core.preservation import (
    PreservationReport,
    ResultPreservationReport,
    is_data_preserving,
    is_result_preserving,
)
from repro.core.qcs import QCS, extract_qcs, extract_workload_qcs
from repro.core.scanfree import (
    BoundedReport,
    GetResult,
    ScanFreeReport,
    VCEntry,
    compute_get,
    compute_vc,
    is_bounded,
    is_scan_free,
)
from repro.core.t2b import Suggestion, T2BReport, design_schema, suggest_schemas

__all__ = [
    "BoundedReport",
    "GetResult",
    "PlanGenerator",
    "PreservationReport",
    "QCS",
    "QueryDecision",
    "ResultPreservationReport",
    "ScanFreeReport",
    "Suggestion",
    "T2BReport",
    "VCEntry",
    "Zidian",
    "ZidianPlan",
    "closure",
    "closures",
    "compute_get",
    "compute_vc",
    "design_schema",
    "suggest_schemas",
    "extract_qcs",
    "extract_workload_qcs",
    "is_bounded",
    "is_data_preserving",
    "is_result_preserving",
    "is_scan_free",
    "substitute_table",
]
