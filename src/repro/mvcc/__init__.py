"""MVCC snapshot subsystem (PR 9).

Gives every committed write a monotone **commit epoch**, every query a
consistent **snapshot epoch**, and the service a begin/apply/commit
transaction surface — so analytical readers never wait on the update
stream (the HTAP split the service previously forced through a global
writer-exclusive lock).

Three pieces:

* :class:`~repro.mvcc.epoch.EpochManager` — the epoch clock: a
  published epoch readers pin (ref-counted snapshot registry), a commit
  allocator that never reuses an epoch, and the GC **horizon** (the
  oldest epoch any live snapshot can still see).
* :class:`~repro.mvcc.versions.VersionStore` — a client-side
  rollback-segment overlay: the base KV write happens in place, and the
  *superseded* value is retained as an interval ``(birth, death,
  value)`` until no live snapshot can see it. Readers pinned at epoch E
  reconstruct state-as-of-E; writers install E+1 beside them.
* :class:`~repro.mvcc.txn.TransactionManager` /
  :class:`~repro.mvcc.txn.Transaction` — multi-statement transactions:
  statements buffer, then replay atomically under the commit mutex at
  one commit epoch spanning every touched relation *and* its secondary
  indexes; snapshot readers see all-or-nothing.

See "MVCC & transactions (PR 9)" in ``docs/ARCHITECTURE.md`` for the
epoch lifecycle and the GC rule.
"""

from repro.mvcc.epoch import EpochManager
from repro.mvcc.txn import (
    DEFAULT_GC_INTERVAL,
    Transaction,
    TransactionManager,
)
from repro.mvcc.versions import VersionStats, VersionStore

__all__ = [
    "DEFAULT_GC_INTERVAL",
    "EpochManager",
    "Transaction",
    "TransactionManager",
    "VersionStats",
    "VersionStore",
]
