"""Multi-statement transactions over the version store.

A :class:`Transaction` buffers ``apply_updates`` statements;
:meth:`Transaction.commit` replays them atomically:

1. take the manager's **commit mutex** (one installing writer at a
   time — concurrent writers serialize here, *not* against readers);
2. allocate a commit epoch C (:meth:`EpochManager.begin_commit` —
   never reused, even if this commit fails);
3. replay every statement inside ``versions.recording(C)`` — the
   cluster write path captures each key's superseded value into the
   overlay *before* overwriting it, across every touched relation, its
   TaaV/BaaV stores and its secondary indexes;
4. **publish** C — only now do new snapshots see any of it.

Readers never block: a query pins the published epoch
(:meth:`TransactionManager.snapshot`), reads state-as-of-that-epoch
through the overlay, and unpins when done. The last unpin (and every
``gc_interval``-th commit, and an optional background thread) runs GC:
versions dead at or before the epoch horizon are reclaimed.

Failure semantics: an error while replaying statements aborts the
transaction with the epoch **unpublished** — no snapshot ever pins the
failed epoch, so its partially-installed base writes stay invisible to
MVCC readers until a later commit supersedes them (unpinned "latest
state" readers may observe them, exactly like a half-applied
``apply_updates`` before this PR). A transaction object belongs to one
session/thread; it is not itself thread-safe.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Callable, Iterable, Iterator, List, Optional, Tuple

from repro.errors import TransactionError
from repro.locks import make_lock
from repro.mvcc.epoch import EpochManager
from repro.mvcc.versions import VersionStore

#: one buffered statement: (relation, inserted rows, deleted rows)
Statement = Tuple[str, List[tuple], List[tuple]]
#: the system hook that applies one statement to every storage layer
ApplyFn = Callable[..., None]

#: commits between amortized GC sweeps (the ``snapshot_gc_interval``
#: knob of the systems/service layer)
DEFAULT_GC_INTERVAL = 32


class TransactionManager:
    """Owns the commit protocol, the snapshot surface, and GC pacing.

    ``apply_fn(relation, inserts, deletes)`` is the system's
    *base* apply hook (relational rows + TaaV/BaaV + indexes), called
    once per buffered statement inside the recording context.

    ``gc_interval`` amortizes garbage collection over commits; GC also
    runs when the last snapshot unpins (the horizon just jumped
    forward). ``gc_period_s`` additionally starts a background daemon
    thread sweeping on a wall-clock period — useful for long-lived
    services whose pin/commit cadence alone would let chains linger.
    """

    def __init__(
        self,
        epochs: EpochManager,
        versions: VersionStore,
        apply_fn: ApplyFn,
        gc_interval: int = DEFAULT_GC_INTERVAL,
        gc_period_s: Optional[float] = None,
    ) -> None:
        if gc_interval <= 0:
            raise ValueError("gc_interval must be positive")
        self.epochs = epochs
        self.versions = versions
        self._apply = apply_fn
        self.gc_interval = gc_interval
        #: serializes installing writers (readers never take this)
        self._commit_lock = make_lock(
            "TransactionManager._commit_lock"
        )
        self._commits_since_gc = 0
        self._gc_stop: Optional[threading.Event] = None
        self._gc_thread: Optional[threading.Thread] = None
        if gc_period_s is not None:
            self.start_gc_thread(gc_period_s)

    # -- reader surface ----------------------------------------------------

    @contextmanager
    def snapshot(self) -> Iterator[int]:
        """Pin the published epoch for the calling thread's reads."""
        epoch = self.epochs.pin()
        try:
            with self.versions.reading(epoch):
                yield epoch
        finally:
            if self.epochs.unpin(epoch):
                # the last live snapshot is gone: the horizon advanced
                # to the published epoch, so sweep now
                self.gc_now()

    # -- writer surface ----------------------------------------------------

    def begin(self) -> "Transaction":
        return Transaction(self)

    def commit_statements(self, statements: Iterable[Statement]) -> int:
        """Install ``statements`` atomically at one commit epoch."""
        with self._commit_lock:
            epoch = self.epochs.begin_commit()
            with self.versions.recording(epoch):
                for relation, inserts, deletes in statements:
                    self._apply(relation, inserts, deletes)
            self.epochs.publish(epoch)
            self._commits_since_gc += 1
            if self._commits_since_gc >= self.gc_interval:
                self._commits_since_gc = 0
                self.versions.gc(self.epochs.horizon())
        return epoch

    # -- GC ----------------------------------------------------------------

    def gc_now(self) -> int:
        """Sweep versions dead at the current horizon; returns count."""
        return self.versions.gc(self.epochs.horizon())

    def start_gc_thread(self, period_s: float) -> None:
        """Start the background GC daemon (idempotent)."""
        if period_s <= 0:
            raise ValueError("period_s must be positive")
        if self._gc_thread is not None:
            return
        stop = threading.Event()

        def loop() -> None:
            while not stop.wait(period_s):
                self.gc_now()

        self._gc_stop = stop
        self._gc_thread = threading.Thread(
            target=loop, name="mvcc-gc", daemon=True
        )
        self._gc_thread.start()

    def close(self) -> None:
        """Stop the background GC thread, if any. Idempotent."""
        thread = self._gc_thread
        if thread is None:
            return
        assert self._gc_stop is not None
        self._gc_stop.set()
        thread.join(timeout=5.0)
        self._gc_thread = None
        self._gc_stop = None

    def __repr__(self) -> str:
        return (
            f"TransactionManager(published={self.epochs.published}, "
            f"pinned={self.epochs.pinned()}, "
            f"gc_interval={self.gc_interval})"
        )


class Transaction:
    """A buffered multi-statement transaction (begin → apply* → commit).

    Statements accumulate client-side and install at commit; reads
    issued while the transaction is open therefore still see the
    pre-transaction state (snapshot isolation without read-your-own-
    writes — the paper's workloads never read back mid-transaction).
    Usable as a context manager: commits on clean exit, aborts when the
    body raised.
    """

    def __init__(self, manager: TransactionManager) -> None:
        self._manager = manager
        self._statements: List[Statement] = []
        self._state = "open"
        #: the commit epoch, set by a successful commit()
        self.epoch: Optional[int] = None

    @property
    def state(self) -> str:
        """``"open"``, ``"committed"`` or ``"aborted"``."""
        return self._state

    @property
    def statements(self) -> int:
        """Number of buffered statements."""
        return len(self._statements)

    def apply_updates(
        self,
        relation: str,
        inserts: Iterable[tuple] = (),
        deletes: Iterable[tuple] = (),
    ) -> None:
        """Buffer one relational Δ; installed atomically at commit."""
        if self._state != "open":
            raise TransactionError(
                f"cannot apply updates: transaction is {self._state}"
            )
        self._statements.append(
            (
                relation,
                [tuple(row) for row in inserts],
                [tuple(row) for row in deletes],
            )
        )

    def commit(self) -> int:
        """Install every buffered statement at one commit epoch."""
        if self._state != "open":
            raise TransactionError(
                f"cannot commit: transaction is {self._state}"
            )
        if not self._statements:
            # nothing to install: no epoch burned, nothing published
            self._state = "committed"
            self.epoch = self._manager.epochs.published
            return self.epoch
        try:
            self.epoch = self._manager.commit_statements(
                self._statements
            )
        # repro-lint: disable=broad-except -- state bookkeeping only:
        # any failure (including KeyboardInterrupt) marks the txn
        # aborted and is re-raised unchanged
        except BaseException:
            self._state = "aborted"
            raise
        self._state = "committed"
        return self.epoch

    def abort(self) -> None:
        """Discard the buffered statements (nothing was installed)."""
        if self._state == "committed":
            raise TransactionError(
                "cannot abort: transaction already committed"
            )
        self._state = "aborted"
        self._statements.clear()

    def __enter__(self) -> "Transaction":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._state != "open":
            return
        if exc_type is None:
            self.commit()
        else:
            self.abort()

    def __repr__(self) -> str:
        return (
            f"Transaction({self._state}, "
            f"statements={len(self._statements)}, epoch={self.epoch})"
        )
