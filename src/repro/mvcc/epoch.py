"""The epoch clock: published snapshots, pinned readers, the GC horizon.

Epochs are the MVCC subsystem's logical time. ``0`` is the load state;
every committed transaction owns one epoch. The manager keeps three
facts under one mutex:

* ``published`` — the newest epoch whose writes are fully installed.
  Readers pin *this* (never an in-flight commit), so a snapshot is
  always a fully-committed state.
* the **pin registry** — a ref-count per pinned epoch. Pinning is how a
  query (or an explicit snapshot) keeps its state visible: the version
  store may not discard anything a pinned epoch can still see.
* the **commit allocator** — ``begin_commit`` hands out each epoch at
  most once, even when a commit fails before publishing. Reusing a
  failed commit's epoch would merge its partially-installed writes into
  the next transaction's atomicity unit.

The **horizon** is the oldest pinned epoch (or ``published`` when
nothing is pinned): every superseded version that died at or before the
horizon is invisible to all current and future snapshots and may be
reclaimed (:meth:`~repro.mvcc.versions.VersionStore.gc`).
"""

from __future__ import annotations

from typing import Dict

from repro.errors import TransactionError
from repro.locks import make_lock


class EpochManager:
    """Allocates commit epochs and ref-counts pinned snapshot epochs."""

    def __init__(self) -> None:
        #: guards the clock and the pin registry
        self._lock = make_lock("EpochManager._lock")
        self._published = 0
        #: next epoch begin_commit may hand out — never reused, even
        #: when a commit fails before publishing
        self._next_commit = 1
        #: pinned epoch -> number of live snapshots reading it
        self._pins: Dict[int, int] = {}

    # -- reader side -------------------------------------------------------

    @property
    def published(self) -> int:
        """The newest fully-committed epoch."""
        with self._lock:
            return self._published

    def pin(self) -> int:
        """Pin the published epoch for a new snapshot; returns it."""
        with self._lock:
            epoch = self._published
            self._pins[epoch] = self._pins.get(epoch, 0) + 1
            return epoch

    def unpin(self, epoch: int) -> bool:
        """Release one pin on ``epoch``; ``True`` when no snapshot
        remains pinned anywhere (the natural moment to run GC)."""
        with self._lock:
            count = self._pins.get(epoch)
            if count is None:
                raise TransactionError(
                    f"epoch {epoch} is not pinned"
                )
            if count == 1:
                del self._pins[epoch]
            else:
                self._pins[epoch] = count - 1
            return not self._pins

    def pinned(self) -> int:
        """Total number of live pins across all epochs."""
        with self._lock:
            return sum(self._pins.values())

    # -- writer side -------------------------------------------------------

    def begin_commit(self) -> int:
        """Allocate the next commit epoch (strictly after ``published``
        and after every previously allocated epoch)."""
        with self._lock:
            epoch = max(self._next_commit, self._published + 1)
            self._next_commit = epoch + 1
            return epoch

    def publish(self, epoch: int) -> None:
        """Mark ``epoch`` fully installed; new pins see it."""
        with self._lock:
            if epoch > self._published:
                self._published = epoch

    # -- GC ----------------------------------------------------------------

    def horizon(self) -> int:
        """The oldest epoch any live snapshot can still see.

        Superseded versions that died at or before the horizon are
        unreachable by every current pin and every future pin (new pins
        take ``published`` ≥ horizon), so the version store may reclaim
        them.
        """
        with self._lock:
            return min(self._pins) if self._pins else self._published

    def __repr__(self) -> str:
        with self._lock:
            return (
                f"EpochManager(published={self._published}, "
                f"pins={dict(self._pins)})"
            )
