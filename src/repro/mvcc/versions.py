"""The version store: a client-side rollback-segment overlay.

The base KV write still happens **in place** (so the WAL, replication,
rebalancing and cache invalidation paths of PRs 3/8 are untouched); what
MVCC adds is an *overlay* that retains each superseded value as an
interval::

    (birth, death, value)     # value None = the key was absent

``birth`` is the commit epoch that installed the value, ``death`` the
epoch that replaced it. Per key the store tracks the **birth of the
current base value** plus the chain of dead intervals (ascending,
contiguous: each entry's death equals the next entry's birth, and the
last entry's death equals the current birth).

The read rule for a snapshot pinned at epoch E:

* current birth ≤ E (or the key was never overwritten) — the **base**
  value is the right one; the overlay stays silent.
* current birth > E — walk the chain newest-first for the entry with
  ``birth ≤ E``; its value is the answer (``None`` = absent at E).
  Entries walked past are the *versions skipped*, surfaced on
  :class:`~repro.parallel.metrics.ExecutionMetrics`.

Because the overlay entry for a write is installed **before** the base
write (see ``KVCluster._record_overwrite``), a reader pinned at E < C
can never observe a commit C half-applied: every key C touches is
either not yet written (base still shows the pre-C value) or already
overlaid (the chain shows the pre-C value) — all-or-nothing either way.

Overlay reads are **client-side**: they touch no storage node, cost
zero ``#get``/round trips (exactly like a cache hit), and are metered
in thread-sharded :class:`VersionStats` instead.

Epoch context travels thread-locally (:meth:`reading` /
:meth:`recording`): a query executes on one thread (the PR-5 design),
so its pinned epoch rides the thread through every storage layer
without threading a parameter through the engines.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, TypeVar

from repro.locks import ShardSet, make_lock

_Key = Tuple[str, bytes]
#: one superseded version: (birth epoch, death epoch, value-or-absent)
_Entry = Tuple[int, int, Optional[bytes]]
#: scan entries carry an opaque per-pair tag (the serving node); overlay
#: -served pairs get tag ``None`` — no node served them
_Tag = TypeVar("_Tag")


@dataclass
class VersionStats:
    """Cumulative overlay accounting (one shard per serving thread)."""

    #: superseded versions captured into chains by commits
    versions_recorded: int = 0
    #: reads served from the overlay instead of the base (zero #get)
    overlay_reads: int = 0
    #: versions walked past to reach the snapshot-visible one (the base
    #: version counts as the first skip)
    versions_skipped: int = 0
    #: dead versions reclaimed by GC
    gc_reclaimed: int = 0

    def add(self, other: "VersionStats") -> None:
        self.versions_recorded += other.versions_recorded
        self.overlay_reads += other.overlay_reads
        self.versions_skipped += other.versions_skipped
        self.gc_reclaimed += other.gc_reclaimed

    def __str__(self) -> str:
        return (
            f"recorded={self.versions_recorded} "
            f"overlay_reads={self.overlay_reads} "
            f"skipped={self.versions_skipped} "
            f"gc_reclaimed={self.gc_reclaimed}"
        )


class VersionStore:
    """Superseded-version chains keyed by ``(namespace, key_bytes)``."""

    def __init__(self) -> None:
        #: guards the chains and current-birth maps (leaf lock: nothing
        #: blocking — in particular no node I/O — runs under it)
        self._lock = make_lock("VersionStore._lock")
        #: birth epoch of the CURRENT base value, for overwritten keys
        #: only (absent = never overwritten since tracking began = the
        #: base value is visible at every epoch)
        self._birth: Dict[_Key, int] = {}
        #: dead versions, ascending and contiguous per key
        self._chains: Dict[_Key, List[_Entry]] = {}
        #: per-thread accounting shards (see repro.locks.ShardSet)
        self._shards: ShardSet[VersionStats] = ShardSet(VersionStats)
        #: thread-local epoch context (read pin / recording commit)
        self._ctx = threading.local()

    @property
    def _stats(self) -> VersionStats:
        """The calling thread's statistics shard."""
        return self._shards.local()

    # -- thread-local epoch context ---------------------------------------

    def read_epoch(self) -> Optional[int]:
        """The calling thread's pinned snapshot epoch (None = unpinned:
        reads see the current base, the pre-MVCC behavior)."""
        return getattr(self._ctx, "read", None)

    @contextmanager
    def reading(self, epoch: int) -> Iterator[int]:
        """Pin the calling thread's reads at ``epoch``."""
        previous = getattr(self._ctx, "read", None)
        self._ctx.read = epoch
        try:
            yield epoch
        finally:
            self._ctx.read = previous

    def recording_epoch(self) -> Optional[int]:
        """The commit epoch the calling thread is installing (None =
        not inside a commit: writes are not versioned)."""
        return getattr(self._ctx, "record", None)

    @contextmanager
    def recording(self, epoch: int) -> Iterator[int]:
        """Mark the calling thread as installing commit ``epoch``."""
        previous = getattr(self._ctx, "record", None)
        self._ctx.record = epoch
        try:
            yield epoch
        finally:
            self._ctx.record = previous

    # -- write side (commit path) -----------------------------------------

    def version_needed(self, namespace: str, key_bytes: bytes,
                       epoch: int) -> bool:
        """Must the committing writer capture this key's old value?

        ``False`` when the current value was already installed by the
        same commit epoch (a re-write within one transaction — e.g. a
        BaaV block split deleting and re-putting a segment): the
        pre-transaction value is already in the chain.
        """
        with self._lock:
            return self._birth.get((namespace, key_bytes), 0) != epoch

    def record_write(
        self,
        namespace: str,
        key_bytes: bytes,
        epoch: int,
        old_value: Optional[bytes],
    ) -> bool:
        """Retain ``old_value`` as the version that dies at ``epoch``.

        Called by the cluster write path *before* the base write, so a
        pinned reader always finds either the old base or the overlay
        entry. Idempotent per (key, epoch); returns whether a version
        was recorded.
        """
        key = (namespace, key_bytes)
        with self._lock:
            birth = self._birth.get(key, 0)
            if birth == epoch:
                return False
            self._chains.setdefault(key, []).append(
                (birth, epoch, old_value)
            )
            self._birth[key] = epoch
        self._stats.versions_recorded += 1
        return True

    # -- read side (snapshot path) ----------------------------------------

    def _visible(
        self, key: _Key, epoch: int
    ) -> Tuple[bool, Optional[bytes], int]:
        """(overlay handles it, value-or-absent, versions skipped)."""
        # repro-lint: holds=_lock -- internal helper of the read surface
        birth = self._birth.get(key)
        if birth is None or birth <= epoch:
            return False, None, 0
        skipped = 1  # the too-new base value itself
        for entry_birth, _death, value in reversed(
            self._chains.get(key, ())
        ):
            if entry_birth <= epoch:
                return True, value, skipped
            skipped += 1
        # every retained version is newer than E: the key did not exist
        # at E (GC keeps everything a pinned epoch can see, so this is
        # the inserted-after-E case)
        return True, None, skipped

    def read_visible(
        self, namespace: str, key_bytes: bytes, epoch: int
    ) -> Tuple[bool, Optional[bytes]]:
        """Value of one key as of ``epoch``; ``(False, None)`` when the
        base value is the visible one (the overlay stays silent)."""
        with self._lock:
            handled, value, skipped = self._visible(
                (namespace, key_bytes), epoch
            )
        if handled:
            stats = self._stats
            stats.overlay_reads += 1
            stats.versions_skipped += skipped
        return handled, value

    def read_visible_many(
        self, namespace: str, keys: Sequence[bytes], epoch: int
    ) -> List[Tuple[bool, Optional[bytes]]]:
        """Batched :meth:`read_visible` under one lock acquisition."""
        out: List[Tuple[bool, Optional[bytes]]] = []
        overlay_reads = 0
        skipped_total = 0
        with self._lock:
            for key_bytes in keys:
                handled, value, skipped = self._visible(
                    (namespace, key_bytes), epoch
                )
                out.append((handled, value))
                if handled:
                    overlay_reads += 1
                    skipped_total += skipped
        if overlay_reads:
            stats = self._stats
            stats.overlay_reads += overlay_reads
            stats.versions_skipped += skipped_total
        return out

    def is_overlaid(
        self, namespace: str, key_bytes: bytes, epoch: int
    ) -> bool:
        """Does a snapshot at ``epoch`` read this key from the overlay?

        Used by the read-through cache to suppress fills whose payload
        came from the overlay rather than the current base.
        """
        with self._lock:
            birth = self._birth.get((namespace, key_bytes))
            return birth is not None and birth > epoch

    def adjust_scan(
        self,
        namespace: str,
        entries: List[Tuple[_Tag, bytes, bytes]],
        epoch: int,
    ) -> List[Tuple[Optional[_Tag], bytes, bytes]]:
        """Rewrite a materialized base scan to state-as-of-``epoch``.

        ``entries`` are ``(tag, stripped_key, value)`` pairs as the
        cluster scanned them (tag = serving node). Pairs whose base
        value is too new are replaced from the chain (tag ``None`` — no
        node served the overlay read), pairs for keys absent at the
        snapshot are dropped, and keys deleted from the base after the
        snapshot are appended back (tag ``None``). Also heals the torn
        cross-node scan: per-node snapshots taken milliseconds apart
        land on the same epoch.
        """
        out: List[Tuple[Optional[_Tag], bytes, bytes]] = []
        seen = set()
        overlay_reads = 0
        skipped_total = 0
        with self._lock:
            for tag, stripped, value in entries:
                seen.add(stripped)
                handled, visible, skipped = self._visible(
                    (namespace, stripped), epoch
                )
                if not handled:
                    out.append((tag, stripped, value))
                    continue
                overlay_reads += 1
                skipped_total += skipped
                if visible is not None:
                    out.append((None, stripped, visible))
            # keys the base scan missed (deleted after the snapshot)
            for (entry_ns, key_bytes), birth in self._birth.items():
                if (
                    entry_ns != namespace
                    or birth <= epoch
                    or key_bytes in seen
                ):
                    continue
                handled, visible, skipped = self._visible(
                    (entry_ns, key_bytes), epoch
                )
                if handled:
                    overlay_reads += 1
                    skipped_total += skipped
                    if visible is not None:
                        out.append((None, key_bytes, visible))
        if overlay_reads:
            stats = self._stats
            stats.overlay_reads += overlay_reads
            stats.versions_skipped += skipped_total
        return out

    def adjust_keys(
        self, namespace: str, keys: List[bytes], epoch: int
    ) -> List[bytes]:
        """Key set of a namespace as of ``epoch`` (see
        :meth:`adjust_scan`; values are not materialized)."""
        out: List[bytes] = []
        seen = set()
        with self._lock:
            for key_bytes in keys:
                seen.add(key_bytes)
                handled, visible, _ = self._visible(
                    (namespace, key_bytes), epoch
                )
                if not handled or visible is not None:
                    out.append(key_bytes)
            for (entry_ns, key_bytes), birth in self._birth.items():
                if (
                    entry_ns != namespace
                    or birth <= epoch
                    or key_bytes in seen
                ):
                    continue
                handled, visible, _ = self._visible(
                    (entry_ns, key_bytes), epoch
                )
                if handled and visible is not None:
                    out.append(key_bytes)
        return out

    # -- GC / lifecycle ----------------------------------------------------

    def gc(self, horizon: int) -> int:
        """Reclaim versions no live (or future) snapshot can see.

        An entry ``(birth, death, value)`` is visible to some snapshot
        at E iff ``birth ≤ E < death``; every pinned epoch is ≥ the
        horizon and new pins only move forward, so entries with
        ``death ≤ horizon`` are unreachable forever. A key whose chain
        empties is forgotten entirely (its base birth is necessarily ≤
        the horizon then, so the base is visible to everyone).
        """
        reclaimed = 0
        with self._lock:
            emptied: List[_Key] = []
            for key, chain in self._chains.items():
                kept = [e for e in chain if e[1] > horizon]
                if len(kept) == len(chain):
                    continue
                reclaimed += len(chain) - len(kept)
                if kept:
                    self._chains[key] = kept
                else:
                    emptied.append(key)
            for key in emptied:
                del self._chains[key]
                self._birth.pop(key, None)
        if reclaimed:
            self._stats.gc_reclaimed += reclaimed
        return reclaimed

    def forget_namespace(self, namespace: str) -> int:
        """Drop all version state of a namespace (``drop_namespace`` —
        DDL is exclusive, so no pinned reader is mid-query on it)."""
        with self._lock:
            doomed = [
                key for key in self._birth if key[0] == namespace
            ]
            for key in doomed:
                del self._birth[key]
                self._chains.pop(key, None)
            return len(doomed)

    # -- introspection -----------------------------------------------------

    def tracked_keys(self) -> int:
        """Keys with live overlay state (the leak sweeps assert on it)."""
        with self._lock:
            return len(self._birth)

    def tracked_versions(self) -> int:
        """Retained dead versions across all chains."""
        with self._lock:
            return sum(len(c) for c in self._chains.values())

    def stats(self) -> VersionStats:
        """Aggregate accounting over every serving thread (a snapshot)."""
        with self._lock:
            total = VersionStats()
            for shard in self._shards.all():
                total.add(shard)
            return total

    def thread_stats(self) -> VersionStats:
        """A copy of the CALLING THREAD's shard (per-query attribution)."""
        shard = self._shards.peek()
        total = VersionStats()
        if shard is not None:
            total.add(shard)
        return total

    def __repr__(self) -> str:
        with self._lock:
            return (
                f"VersionStore(keys={len(self._birth)}, "
                f"versions={sum(len(c) for c in self._chains.values())})"
            )
