"""End-to-end SQL-over-NoSQL systems (Fig. 1).

:class:`SQLOverNoSQL` models the baseline stacks of the evaluation — SoH
(SparkSQL-over-HBase), SoK (over Kudu) and SoC (over Cassandra) — via the
backend cost profiles. :class:`ZidianSystem` deploys Zidian on top: same
cluster, same backend, but with a BaaV store and the interleaved engine.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.baav.maintenance import Maintainer
from repro.baav.schema import BaaVSchema
from repro.baav.store import DEFAULT_SPLIT_THRESHOLD, BaaVStore
from repro.core.middleware import QueryDecision, Zidian
from repro.core.qcs import extract_workload_qcs
from repro.core.t2b import design_schema
from repro.errors import ExecutionError
from repro.index.manager import IndexManager
from repro.kba import plan as kp
from repro.kv.backends import BackendProfile, profile as get_profile
from repro.kv.cache import CacheStats, make_cache
from repro.kv.cluster import KVCluster
from repro.kv.taav import TaaVStore
from repro.kba.executor import DEFAULT_BATCH_SIZE
from repro.locks import make_lock
from repro.mvcc import (
    DEFAULT_GC_INTERVAL,
    EpochManager,
    Transaction,
    TransactionManager,
    VersionStore,
)
from repro.parallel.engine import BaselineEngine, ZidianEngine
from repro.parallel.metrics import ExecutionMetrics
from repro.relational.database import Database
from repro.relational.relation import Relation
from repro.relational.schema import Attribute, RelationSchema
from repro.relational.types import AttrType, Row
from repro.sql.executor import Table
from repro.sql import ast
from repro.sql.parser import parse
from repro.sql.planner import bind, bind_any, build_plan_any


@dataclass
class QueryResult:
    """A query's answer plus its execution metrics."""

    relation: Relation
    metrics: ExecutionMetrics
    decision: Optional[QueryDecision] = None
    #: per-side decisions of a compound (UNION/EXCEPT ALL) query
    sub_decisions: Optional[List[QueryDecision]] = None
    #: EXPLAIN-style rendering of the chosen access path per relation
    #: occurrence (scan vs index probe vs key fetch)
    plan_summary: Optional[str] = None

    @property
    def rows(self) -> List[Row]:
        return self.relation.rows


def _parse_index_spec(spec) -> Tuple[str, str, str]:
    """Normalize one ``indexes=`` entry to ``(relation, attr, kind)``.

    Accepts ``"REL.attr"``, ``"REL.attr:kind"``, ``(rel, attr)`` and
    ``(rel, attr, kind)``; the default kind is ``"hash"``.
    """
    if isinstance(spec, str):
        name, _, kind = spec.partition(":")
        relation, _, attr = name.partition(".")
        if not relation or not attr:
            raise ExecutionError(
                f"bad index spec {spec!r} (expected 'REL.attr[:kind]')"
            )
        return relation, attr, kind or "hash"
    spec = tuple(spec)
    if len(spec) == 2:
        return spec[0], spec[1], "hash"
    if len(spec) == 3:
        return spec  # type: ignore[return-value]
    raise ExecutionError(
        f"bad index spec {spec!r} (expected (rel, attr[, kind]))"
    )


def _to_relation(table: Table) -> Relation:
    from repro.sql.executor import unique_names

    schema = RelationSchema(
        "result",
        [Attribute(a, AttrType.STR) for a in unique_names(table.attrs)],
    )
    return Relation(schema, table.rows)


def _rebuild_indexes(indexes: IndexManager, database, requested) -> None:
    """(Re)build every index over a freshly loaded database.

    A re-``load()`` must rebuild *all* indexes — the constructor's
    ``indexes=`` specs and any created online since — or stale postings
    built over the previous data would keep serving. Indexes over
    relations the new database lacks are dropped.
    """
    existing = [
        (index.relation.name, index.attr, index.kind) for index in indexes
    ]
    for relation, attr, kind in dict.fromkeys(existing + list(requested)):
        indexes.drop(relation, attr, kind)
        if relation in database:
            indexes.create(database.relation(relation), attr, kind)


def _zidian_plan_summary(plan) -> str:
    """Render a KBA plan's access path per alias (EXPLAIN summary)."""
    scans: dict = {}
    probes: dict = {}
    for node in kp.walk(plan.root):
        if isinstance(node, kp.ScanKV):
            scans[node.alias] = f"kv scan ({node.kv_name})"
        elif isinstance(node, kp.StatsGroup):
            scans[node.alias] = f"stats scan ({node.kv_name})"
        elif isinstance(node, kp.IndexProbe):
            probes[node.alias] = (
                f"index probe ({node.kind} on {node.attr}) -> multi_get"
            )
    lines = []
    for alias in sorted(plan.access):
        mode = plan.access[alias]
        relation = plan.bound.aliases[alias].name
        if mode == "chain":
            desc = "key fetch (scan-free ∝ chain)"
        elif mode == "index":
            desc = probes.get(alias, "index probe -> multi_get")
        elif mode == "scan_kv":
            desc = scans.get(alias, "kv scan")
        else:
            desc = "taav scan (fetch-all)"
        lines.append(f"{alias} -> {relation}: {desc}")
    return "\n".join(lines)


#: serializes concurrent enable_transactions() calls (begin() may
#: auto-enable from any service thread); leaf-ordered before the
#: cluster lock that attach_versions takes
_ENABLE_LOCK = make_lock("systems.enable_transactions")


class TransactionalMixin:
    """The MVCC surface both systems share (see :mod:`repro.mvcc`).

    ``enable_transactions()`` attaches a version overlay to the cluster
    and builds the epoch clock + transaction manager whose ``apply_fn``
    is the system's :meth:`_apply_base` (relational rows, TaaV/BaaV
    stores and secondary indexes). From then on:

    * every ``apply_updates`` routes through an auto-commit transaction
      (record superseded values → install base writes → publish);
    * every ``execute`` pins the published epoch for its whole run, so
      it sees exactly one committed state even while writers install
      the next one;
    * :meth:`begin` opens an explicit multi-statement transaction
      spanning several relations (and their indexes) atomically.
    """

    cluster: KVCluster
    transactions: Optional[TransactionManager]

    def _apply_base(
        self,
        relation: str,
        inserts: Iterable[Row] = (),
        deletes: Iterable[Row] = (),
    ) -> None:
        raise NotImplementedError

    def enable_transactions(
        self,
        snapshot_gc_interval: int = DEFAULT_GC_INTERVAL,
        gc_period_s: Optional[float] = None,
    ) -> TransactionManager:
        """Switch the system to MVCC snapshots + transactions.

        Idempotent (the first call's knobs win). ``snapshot_gc_interval``
        sets how many commits may pass between amortized version-GC
        sweeps; ``gc_period_s`` additionally starts a background GC
        thread (off by default).
        """
        with _ENABLE_LOCK:
            if self.transactions is None:
                versions = VersionStore()
                self.cluster.attach_versions(versions)
                self.transactions = TransactionManager(
                    EpochManager(),
                    versions,
                    self._apply_base,
                    gc_interval=snapshot_gc_interval,
                    gc_period_s=gc_period_s,
                )
            return self.transactions

    def begin(self) -> Transaction:
        """Open a multi-statement transaction (auto-enables MVCC)."""
        return self.enable_transactions().begin()

    def apply_updates(
        self,
        relation: str,
        inserts: Iterable[Row] = (),
        deletes: Iterable[Row] = (),
    ) -> None:
        """Apply one Δ; an auto-commit transaction when MVCC is on."""
        if self.transactions is not None:
            with self.transactions.begin() as txn:
                txn.apply_updates(relation, inserts, deletes)
            return
        self._apply_base(relation, inserts, deletes)

    def _snapshot_execute(self, run) -> "QueryResult":
        """Run a query pinned at the published epoch (when MVCC is on).

        Re-entrant: a thread already holding a snapshot (a compound
        query's sides, a nested call) keeps its epoch. The GC work this
        query's unpin triggered is stamped onto its metrics.
        """
        manager = self.transactions
        if manager is None or manager.versions.read_epoch() is not None:
            return run()
        reclaimed = manager.versions.thread_stats().gc_reclaimed
        with manager.snapshot():
            result = run()
        # repro-lint: disable=counter-accounting -- metrics is this
        # query's private result object, not a shared stats instance
        result.metrics.gc_reclaimed += (
            manager.versions.thread_stats().gc_reclaimed - reclaimed
        )
        return result

    def _close_transactions(self) -> None:
        if self.transactions is not None:
            self.transactions.close()


class SQLOverNoSQL(TransactionalMixin):
    """A baseline SQL-over-NoSQL system (TaaV storage, fetch-all plans).

    ``cache_capacity_bytes`` enables a client-side read-through block
    cache (0 = off, the conventional stack the paper measures). The
    cache is partitioned per worker — each worker caches the keys it
    owns — and only serves the batched point-read path
    (``batch_size > 1``); the per-key blind scan streams past it.

    ``replication_factor`` keeps every KV pair on that many storage
    nodes (1 = the paper's unreplicated cluster): writes fan out to all
    replicas, reads pick the least-loaded live replica, and the cluster
    keeps serving through ``fail_node``/``recover_node`` churn.

    ``indexes`` requests secondary indexes built at load time — specs
    like ``"FLIGHT.tail_id"`` / ``"FLIGHT.arr_delay:ordered"`` or
    ``(rel, attr[, kind])`` tuples. With an index present, a selective
    non-key filter runs as an index probe + ``multi_get`` instead of the
    fetch-all scan; ``create_index``/``drop_index`` manage them online.

    ``durability``/``data_dir``/``fsync_policy`` make the storage nodes
    crash-consistent (per-node WAL + checkpoints, recovery by replay)
    — see the "Durability" section of :mod:`repro.kv.cluster`.
    """

    def __init__(
        self,
        backend: str = "hbase",
        workers: int = 8,
        storage_nodes: int = 4,
        batch_size: int = 1,
        cache_capacity_bytes: int = 0,
        replication_factor: int = 1,
        transport: Optional[str] = None,
        data_dir: Optional[str] = None,
        durability: Optional[str] = None,
        fsync_policy: str = "group",
        indexes: Sequence = (),
        vectorized: Optional[bool] = None,
    ) -> None:
        self.profile: BackendProfile = get_profile(backend)
        self.workers = workers
        # transport=None defers to REPRO_KV_TRANSPORT (default "local");
        # "socket" puts every storage node in its own OS process.
        # durability=None defers to REPRO_KV_DURABILITY (default "off");
        # "wal" (or a data_dir) makes every node crash-consistent
        self.cluster = KVCluster(
            storage_nodes,
            replication_factor=replication_factor,
            transport=transport,
            data_dir=data_dir,
            durability=durability,
            fsync_policy=fsync_policy,
        )
        # per-key gets by default — the conventional stack the paper
        # measures; raise to model a multi-get-capable client
        self.batch_size = batch_size
        # vectorized=None defers to REPRO_VECTORIZED (default off);
        # True compiles filters/projections into positional closures
        # (PR 10) — same results and counters, less interpreter time
        self.vectorized = vectorized
        self.cache = make_cache(cache_capacity_bytes, partitions=workers)
        self.indexes = IndexManager(self.cluster, cache=self.cache)
        self._requested_indexes = [_parse_index_spec(s) for s in indexes]
        self.database: Optional[Database] = None
        self.taav: Optional[TaaVStore] = None
        #: MVCC transaction surface (None until enable_transactions())
        self.transactions: Optional[TransactionManager] = None

    @property
    def name(self) -> str:
        return f"So{self.profile.name[0].upper()}"

    def cache_stats(self) -> Optional[CacheStats]:
        """Aggregate block-cache statistics (``None`` when cache is off)."""
        return self.cache.stats if self.cache is not None else None

    def load(self, database: Database) -> None:
        """Load a database into the TaaV store (and build any indexes)."""
        self.database = database
        self.taav = TaaVStore.from_database(
            database, self.cluster, cache=self.cache
        )
        _rebuild_indexes(self.indexes, database, self._requested_indexes)
        self.cluster.reset_counters()

    def create_index(
        self, relation: str, attr: str, kind: str = "hash"
    ):
        """Create (and bulk-build) a secondary index on a loaded relation."""
        if self.database is None:
            raise ExecutionError("load() a database first")
        return self.indexes.create(
            self.database.relation(relation), attr, kind
        )

    def drop_index(
        self,
        relation: str,
        attr: Optional[str] = None,
        kind: Optional[str] = None,
    ) -> int:
        """Drop matching indexes (and their cluster entries)."""
        return self.indexes.drop(relation, attr, kind)

    def _engine(self) -> BaselineEngine:
        return BaselineEngine(
            self.taav,
            self.cluster,
            self.profile,
            self.workers,
            batch_size=self.batch_size,
            cache=self.cache,
            indexes=self.indexes if len(self.indexes) else None,
            vectorized=self.vectorized,
        )

    def execute(self, sql: str) -> QueryResult:
        if self.database is None or self.taav is None:
            raise ExecutionError("load() a database first")
        return self._snapshot_execute(lambda: self._execute(sql))

    def _execute(self, sql: str) -> QueryResult:
        bound = bind_any(parse(sql), self.database.schema)
        ra_plan = build_plan_any(bound)
        # per-thread reset: concurrent queries on other service threads
        # keep their own shards (single-threaded behavior is unchanged)
        self.cluster.reset_counters(thread_only=True)
        engine = self._engine()
        table, metrics = engine.execute(ra_plan)
        summary = "\n".join(
            f"{alias} -> {desc}"
            for alias, desc in sorted(engine.access.items())
        )
        return QueryResult(
            _to_relation(table), metrics, plan_summary=summary or None
        )

    def explain(self, sql: str) -> str:
        """The access path each relation occurrence would use (EXPLAIN)."""
        if self.database is None or self.taav is None:
            raise ExecutionError("load() a database first")
        bound = bind_any(parse(sql), self.database.schema)
        ra_plan = build_plan_any(bound)
        access = self._engine().describe_access(ra_plan)
        return "\n".join(
            f"{alias} -> {desc}" for alias, desc in sorted(access.items())
        )

    def _apply_base(
        self,
        relation: str,
        inserts: Iterable[Row] = (),
        deletes: Iterable[Row] = (),
    ) -> None:
        """Apply Δ to the database, the TaaV store and every index."""
        if self.database is None or self.taav is None:
            raise ExecutionError("load() a database first")
        inserts = [tuple(r) for r in inserts]
        deletes = [tuple(r) for r in deletes]
        base = self.database.relation(relation)
        for row in deletes:
            base.rows.remove(row)
        base.extend(inserts)
        taav = self.taav.relation(relation)
        for row in deletes:
            taav.delete_row(row)
        for row in inserts:
            taav.insert(row)
        self.indexes.apply_updates(relation, inserts, deletes)

    def close(self) -> None:
        """Shut the cluster down (reaps node processes; idempotent)."""
        self._close_transactions()
        self.cluster.close()

    def __enter__(self) -> "SQLOverNoSQL":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


class ZidianSystem(TransactionalMixin):
    """A baseline system with Zidian plugged in (§8.2 deployment)."""

    def __init__(
        self,
        backend: str = "hbase",
        workers: int = 8,
        storage_nodes: int = 4,
        degree_bound: int = 64,
        compress: bool = True,
        split_threshold: int = DEFAULT_SPLIT_THRESHOLD,
        keep_stats: bool = True,
        use_stats: bool = True,
        keep_taav: bool = True,
        batch_size: int = DEFAULT_BATCH_SIZE,
        cache_capacity_bytes: int = 0,
        replication_factor: int = 1,
        transport: Optional[str] = None,
        data_dir: Optional[str] = None,
        durability: Optional[str] = None,
        fsync_policy: str = "group",
        indexes: Sequence = (),
        vectorized: Optional[bool] = None,
    ) -> None:
        self.profile: BackendProfile = get_profile(backend)
        self.workers = workers
        # R-way replicated DHT (1 = unreplicated, the paper's cluster);
        # fail_node/recover_node on the cluster model churn under load;
        # transport="socket" puts each node in its own OS process;
        # durability="wal" (or a data_dir) write-ahead-logs every node
        self.cluster = KVCluster(
            storage_nodes,
            replication_factor=replication_factor,
            transport=transport,
            data_dir=data_dir,
            durability=durability,
            fsync_policy=fsync_policy,
        )
        # probe keys coalesced per multi-get round (1 = per-key probes)
        self.batch_size = batch_size
        # vectorized=None defers to REPRO_VECTORIZED (default off);
        # True runs KBA operators as compiled columnar kernels (PR 10)
        # — same results and counters, less interpreter time
        self.vectorized = vectorized
        # client-side read-through block cache, partitioned per worker
        # (0 = off — paper reproductions measure BaaV's contribution alone)
        self.cache = make_cache(cache_capacity_bytes, partitions=workers)
        # secondary indexes (index probes fetch TaaV tuples, so they
        # need keep_taav; enforced in create_index)
        self.indexes = IndexManager(self.cluster, cache=self.cache)
        self._requested_indexes = [_parse_index_spec(s) for s in indexes]
        self.degree_bound = degree_bound
        self.compress = compress
        self.split_threshold = split_threshold
        self.keep_stats = keep_stats
        self.use_stats = use_stats
        self.keep_taav = keep_taav
        self.database: Optional[Database] = None
        self.taav: Optional[TaaVStore] = None
        self.store: Optional[BaaVStore] = None
        self.middleware: Optional[Zidian] = None
        self.maintainer: Optional[Maintainer] = None
        #: MVCC transaction surface (None until enable_transactions())
        self.transactions: Optional[TransactionManager] = None

    @property
    def name(self) -> str:
        return f"So{self.profile.name[0].upper()}Zidian"

    def cache_stats(self) -> Optional[CacheStats]:
        """Aggregate block-cache statistics (``None`` when cache is off)."""
        return self.cache.stats if self.cache is not None else None

    def load(
        self,
        database: Database,
        baav_schema: Optional[BaaVSchema] = None,
        workload: Optional[Sequence[str]] = None,
        budget_bytes: Optional[int] = None,
    ) -> None:
        """Load a database; design the BaaV schema with T2B if not given."""
        self.database = database
        if baav_schema is None:
            if not workload:
                raise ExecutionError(
                    "provide a BaaV schema or a workload for T2B"
                )
            bound_queries = [
                bind(parse(sql), database.schema) for sql in workload
            ]
            qcs = extract_workload_qcs(bound_queries)
            baav_schema, _ = design_schema(
                database.schema, qcs, database, budget_bytes
            )
        if self.keep_taav:
            self.taav = TaaVStore.from_database(
                database, self.cluster, cache=self.cache
            )
        self.store = BaaVStore.map_database(
            database,
            baav_schema,
            self.cluster,
            compress=self.compress,
            split_threshold=self.split_threshold,
            keep_stats=self.keep_stats,
            cache=self.cache,
        )
        if self._requested_indexes or len(self.indexes):
            if not self.keep_taav:
                raise ExecutionError(
                    "secondary indexes need the TaaV store "
                    "(keep_taav=True): index probes fetch tuples by "
                    "primary key"
                )
            _rebuild_indexes(
                self.indexes, database, self._requested_indexes
            )
        self.middleware = Zidian(
            database.schema,
            baav_schema,
            self.store,
            degree_bound=self.degree_bound,
            allow_taav_fallback=self.keep_taav,
            use_stats=self.use_stats,
            index_catalog=self.indexes,
        )
        self.maintainer = Maintainer(self.store)
        self.cluster.reset_counters()

    def create_index(
        self, relation: str, attr: str, kind: str = "hash"
    ):
        """Create (and bulk-build) a secondary index on a loaded relation.

        Index probes resolve primary keys against the TaaV store, so the
        system must keep it (``keep_taav=True``).
        """
        if self.database is None:
            raise ExecutionError("load() a database first")
        if not self.keep_taav:
            raise ExecutionError(
                "secondary indexes need the TaaV store (keep_taav=True): "
                "index probes fetch tuples by primary key"
            )
        return self.indexes.create(
            self.database.relation(relation), attr, kind
        )

    def drop_index(
        self,
        relation: str,
        attr: Optional[str] = None,
        kind: Optional[str] = None,
    ) -> int:
        """Drop matching indexes (and their cluster entries)."""
        return self.indexes.drop(relation, attr, kind)

    def execute(self, sql: str) -> QueryResult:
        if self.middleware is None or self.store is None:
            raise ExecutionError("load() a database first")
        # the snapshot pin wraps the whole statement, so both sides of
        # a compound query read the same epoch
        return self._snapshot_execute(lambda: self._run(sql))

    def _run(self, sql: str) -> QueryResult:
        stmt = parse(sql)
        if isinstance(stmt, ast.CompoundSelect):
            return self._execute_compound(stmt)
        return self._execute_stmt(stmt)

    def _execute_stmt(self, stmt) -> QueryResult:
        bound = bind(stmt, self.database.schema)
        plan, decision = self.middleware.plan(bound)
        # per-thread reset: concurrent queries on other service threads
        # keep their own shards (single-threaded behavior is unchanged)
        self.cluster.reset_counters(thread_only=True)
        engine = ZidianEngine(
            self.store,
            self.taav,
            self.cluster,
            self.profile,
            self.workers,
            batch_size=self.batch_size,
            cache=self.cache,
            indexes=self.indexes if len(self.indexes) else None,
            vectorized=self.vectorized,
        )
        table, metrics = engine.execute(plan)
        return QueryResult(
            _to_relation(table),
            metrics,
            decision,
            plan_summary=_zidian_plan_summary(plan),
        )

    def explain(self, sql: str) -> str:
        """M1 checks, chase trace, index coverage and the KBA plan."""
        if self.middleware is None:
            raise ExecutionError("load() a database first")
        return self.middleware.explain(sql)

    def _execute_compound(self, stmt: "ast.CompoundSelect") -> QueryResult:
        """UNION ALL / EXCEPT ALL: evaluate each side over the BaaV store
        and combine with KBA's bag ∪ / − semantics (§4.2)."""
        from collections import Counter

        left = (
            self._execute_compound(stmt.left)
            if isinstance(stmt.left, ast.CompoundSelect)
            else self._execute_stmt(stmt.left)
        )
        right = self._execute_stmt(stmt.right)
        if len(left.relation.schema.attributes) != len(
            right.relation.schema.attributes
        ):
            raise ExecutionError(
                "compound select operands must have equal arity"
            )
        if stmt.op == "union":
            rows = left.relation.rows + right.relation.rows
        else:
            remaining = Counter(right.relation.rows)
            rows = []
            for row in left.relation.rows:
                if remaining.get(row, 0) > 0:
                    remaining[row] -= 1
                else:
                    rows.append(row)
        relation = Relation(left.relation.schema, rows)
        metrics = left.metrics
        metrics.merge(right.metrics)
        sub = list(left.sub_decisions or [left.decision])
        sub.append(right.decision)
        return QueryResult(relation, metrics, None, sub_decisions=sub)

    def _apply_base(
        self,
        relation: str,
        inserts: Iterable[Row] = (),
        deletes: Iterable[Row] = (),
    ) -> None:
        """Apply Δ to the database and incrementally to the BaaV store."""
        if self.database is None or self.maintainer is None:
            raise ExecutionError("load() a database first")
        inserts = list(inserts)
        deletes = list(deletes)
        base = self.database.relation(relation)
        for row in deletes:
            base.rows.remove(tuple(row))
        base.extend(inserts)
        if self.taav is not None:
            taav = self.taav.relation(relation)
            # deletes first: a same-pk update (delete old + insert new)
            # must not delete the freshly inserted tuple
            for row in deletes:
                taav.delete_row(tuple(row))
            for row in inserts:
                taav.insert(tuple(row))
        self.maintainer.insert(relation, inserts)
        self.maintainer.delete(relation, deletes)
        self.indexes.apply_updates(
            relation,
            [tuple(r) for r in inserts],
            [tuple(r) for r in deletes],
        )

    def close(self) -> None:
        """Shut the cluster down (reaps node processes; idempotent)."""
        self._close_transactions()
        self.cluster.close()

    def __enter__(self) -> "ZidianSystem":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
