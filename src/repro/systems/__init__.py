"""End-to-end systems: baselines (SoH/SoK/SoC) and Zidian deployments."""

from repro.systems.sql_over_nosql import QueryResult, SQLOverNoSQL, ZidianSystem

__all__ = ["QueryResult", "SQLOverNoSQL", "ZidianSystem"]
