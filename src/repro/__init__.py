"""repro: a reproduction of "Block as a Value for SQL over NoSQL" (VLDB'19).

Public API highlights
---------------------
* :class:`repro.relational.Database` -- relational substrate.
* :func:`repro.sql.plan_sql` / :func:`repro.sql.execute` -- SQL front-end.
* :class:`repro.baav.KVSchema` / :class:`repro.baav.BaaVStore` -- the BaaV
  model (section 4.1).
* :class:`repro.core.Zidian` -- the middleware (section 5): preservation
  checks, scan-free analysis, KBA plan generation.
* :class:`repro.systems.SQLOverNoSQL` / :class:`repro.systems.ZidianSystem`
  -- end-to-end engines used by the benchmarks.
"""

__version__ = "0.1.0"

from repro.relational import (
    AttrType,
    Attribute,
    Database,
    DatabaseSchema,
    Relation,
    RelationSchema,
)

__all__ = [
    "AttrType",
    "Attribute",
    "Database",
    "DatabaseSchema",
    "Relation",
    "RelationSchema",
    "__version__",
]
