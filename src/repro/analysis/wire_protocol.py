"""Wire-protocol exhaustiveness checker (cross-file).

The socket transport's correctness rests on a three-way contract:
every opcode declared in ``kv/wire.py`` is (a) encodable *and*
decodable by the request codec, (b) dispatched by exactly one handler
branch per function in ``kv/server.py``, and (c) reachable from a
client call in ``kv/remote.py``. A new opcode that misses any leg
ships a protocol the other side cannot speak — the class of bug the
conformance tests catch only for opcodes someone remembered to test.

Checks (all emitted under the ``wire-protocol`` rule):

* every ``OP_*`` constant appears in ``OP_NAMES``;
* ``encode_request`` and ``decode_request`` each handle every opcode
  (directly or through the ``_PREFIX_OPS`` / ``_NULLARY_OPS`` groups);
* ``kv/server.py`` compares against every opcode somewhere, and no
  function compares against the same opcode twice (one branch per
  opcode per dispatch);
* ``kv/remote.py`` issues a ``request(wire.OP_X, ...)`` for every
  opcode;
* module-level ``encode_<T>`` / ``decode_<T>`` helpers in ``wire.py``
  pair up by suffix, modulo the documented asymmetric helpers
  (:data:`repro.analysis.config.WIRE_PAIR_EXCEPTIONS`).

The checker is silent when the wire module is outside the analyzed
paths (running repro-lint on a single unrelated file stays quiet).
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, List, Optional, Set

from repro.analysis import config
from repro.analysis.core import Checker, Finding, ParsedModule, Project

_OP_RE = re.compile(r"^OP_[A-Z0-9_]+$")
_GROUP_RE = re.compile(r"^_[A-Z0-9_]*OPS$")


def _op_refs(tree: ast.AST) -> Set[str]:
    """Every ``OP_*`` referenced as a name or ``wire.OP_*`` attribute."""
    out: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Name) and _OP_RE.match(node.id):
            out.add(node.id)
        elif isinstance(node, ast.Attribute) and _OP_RE.match(node.attr):
            out.add(node.attr)
    return out


class _WireDecl:
    """Everything the checker needs from ``kv/wire.py``."""

    def __init__(self, module: ParsedModule) -> None:
        self.module = module
        self.ops: Dict[str, int] = {}          # OP_X → def lineno
        self.groups: Dict[str, Set[str]] = {}  # _PREFIX_OPS → members
        self.named: Set[str] = set()           # keys of OP_NAMES
        self.codec_refs: Dict[str, Set[str]] = {}
        self.encode_helpers: Dict[str, int] = {}
        self.decode_helpers: Dict[str, int] = {}
        for node in module.tree.body:
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if not isinstance(target, ast.Name):
                    continue
                if target.id == "OP_NAMES":  # before _OP_RE: it matches too
                    for child in ast.walk(node.value):
                        if isinstance(child, ast.Name) and _OP_RE.match(
                            child.id
                        ):
                            self.named.add(child.id)
                elif _OP_RE.match(target.id):
                    self.ops[target.id] = node.lineno
                elif _GROUP_RE.match(target.id) and isinstance(
                    node.value, (ast.Tuple, ast.List)
                ):
                    self.groups[target.id] = {
                        element.id
                        for element in node.value.elts
                        if isinstance(element, ast.Name)
                        and _OP_RE.match(element.id)
                    }
            elif isinstance(node, ast.AnnAssign) and isinstance(
                node.target, ast.Name
            ):
                if node.target.id == "OP_NAMES" and node.value is not None:
                    for child in ast.walk(node.value):
                        if isinstance(child, ast.Name) and _OP_RE.match(
                            child.id
                        ):
                            self.named.add(child.id)
            elif isinstance(node, ast.FunctionDef):
                if node.name in ("encode_request", "decode_request"):
                    refs = _op_refs(node)
                    for child in ast.walk(node):
                        if isinstance(child, ast.Name) and _GROUP_RE.match(
                            child.id
                        ):
                            refs.update(self.groups.get(child.id, set()))
                    self.codec_refs[node.name] = refs
                elif node.name.startswith("encode_"):
                    self.encode_helpers[node.name[len("encode_"):]] = (
                        node.lineno
                    )
                elif node.name.startswith("decode_"):
                    self.decode_helpers[node.name[len("decode_"):]] = (
                        node.lineno
                    )
        # group members referenced via `op in _PREFIX_OPS` resolve through
        # the group name; a group tuple itself names its members


class WireProtocolChecker(Checker):
    name = "wire-protocol"
    description = (
        "every opcode is encodable, decodable, server-dispatched exactly "
        "once and client-reachable; codec helpers pair up"
    )
    rules = ("wire-protocol",)

    def check_project(self, project: Project) -> Iterator[Finding]:
        wire = project.find("kv/wire.py")
        if wire is None:
            return iter(())
        decl = _WireDecl(wire)
        findings: List[Finding] = []

        def flag(
            module: ParsedModule, line: int, message: str
        ) -> None:
            findings.append(
                Finding(
                    path=module.path,
                    line=line,
                    col=0,
                    rule="wire-protocol",
                    message=message,
                )
            )

        # -- OP_NAMES totality ---------------------------------------------
        for op, lineno in decl.ops.items():
            if op not in decl.named:
                flag(wire, lineno, f"{op} is missing from OP_NAMES")

        # -- request codec totality ----------------------------------------
        for func in ("encode_request", "decode_request"):
            refs = decl.codec_refs.get(func)
            if refs is None:
                flag(wire, 1, f"wire module defines no {func}()")
                continue
            for op, lineno in decl.ops.items():
                if op not in refs:
                    flag(
                        wire, lineno,
                        f"{op} is not handled by {func}() — the request "
                        f"codec must be total over the opcodes",
                    )

        # -- server dispatch ------------------------------------------------
        server = project.find("kv/server.py")
        if server is not None:
            module_refs: Set[str] = set()
            for node in ast.walk(server.tree):
                if not isinstance(node, ast.FunctionDef):
                    continue
                counts: Dict[str, int] = {}
                for child in ast.walk(node):
                    if not isinstance(child, ast.Compare):
                        continue
                    for ref in _op_refs(child):
                        counts[ref] = counts.get(ref, 0) + 1
                for op, count in counts.items():
                    module_refs.add(op)
                    if count > 1:
                        flag(
                            server, node.lineno,
                            f"{op} is dispatched {count} times inside "
                            f"{node.name}() — exactly one handler branch "
                            f"per opcode",
                        )
            for op, lineno in decl.ops.items():
                if op not in module_refs:
                    where = config.WIRE_LIFECYCLE_OPS.get(op)
                    if where is not None:
                        continue
                    flag(
                        wire, lineno,
                        f"{op} has no handler branch in kv/server.py",
                    )

        # -- client reachability --------------------------------------------
        remote = project.find("kv/remote.py")
        if remote is not None:
            requested: Set[str] = set()
            for node in ast.walk(remote.tree):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "request"
                    and node.args
                ):
                    first: Optional[ast.AST] = node.args[0]
                    if isinstance(first, ast.Attribute) and _OP_RE.match(
                        first.attr
                    ):
                        requested.add(first.attr)
                    elif isinstance(first, ast.Name) and _OP_RE.match(
                        first.id
                    ):
                        requested.add(first.id)
            for op, lineno in decl.ops.items():
                if op not in requested:
                    flag(
                        wire, lineno,
                        f"{op} has no client call site in kv/remote.py — "
                        f"an unreachable opcode is dead protocol",
                    )

        # -- encode/decode pairing ------------------------------------------
        for suffix, lineno in decl.encode_helpers.items():
            if (
                suffix not in decl.decode_helpers
                and f"encode_{suffix}" not in config.WIRE_PAIR_EXCEPTIONS
            ):
                flag(
                    wire, lineno,
                    f"encode_{suffix}() has no decode_{suffix}() — codec "
                    f"helpers must pair (or be registered in "
                    f"WIRE_PAIR_EXCEPTIONS with their counterpart)",
                )
        for suffix, lineno in decl.decode_helpers.items():
            if (
                suffix not in decl.encode_helpers
                and f"decode_{suffix}" not in config.WIRE_PAIR_EXCEPTIONS
            ):
                flag(
                    wire, lineno,
                    f"decode_{suffix}() has no encode_{suffix}() — codec "
                    f"helpers must pair (or be registered in "
                    f"WIRE_PAIR_EXCEPTIONS with their counterpart)",
                )
        return iter(findings)
