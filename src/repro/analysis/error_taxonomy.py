"""Error-taxonomy checker: failures travel as ``repro.errors`` types.

The library promises callers one catchable hierarchy
(:class:`repro.errors.ReproError`); swallowing everything or raising
anonymous builtins breaks that contract. Three rules:

* ``bare-except`` — ``except:`` catches ``KeyboardInterrupt`` and
  ``SystemExit`` too; never acceptable.
* ``broad-except`` — ``except Exception`` / ``except BaseException``
  is allowed only at documented process/connection boundaries (a node
  server answering an app-error frame, a GC teardown safety net, the
  service's accounting settle). Each such site carries a
  ``# repro-lint: disable=broad-except`` with a one-line justification;
  anywhere else it hides typed failures from callers.
* ``foreign-raise`` — raising ``Exception`` / ``RuntimeError`` /
  ``OSError`` (and friends) directly: cross-module failures must be
  ``repro.errors`` types so the taxonomy stays total.
  ``ValueError`` / ``TypeError`` / ``KeyError`` /
  ``NotImplementedError`` / ``AssertionError`` stay allowed — local
  argument validation and invariant checks are stdlib idiom.
"""

from __future__ import annotations

import ast
from typing import Iterator, List

from repro.analysis import config
from repro.analysis.core import Checker, Finding, ParsedModule, Project

_BROAD = ("Exception", "BaseException")


def _exception_names(node: ast.AST) -> List[str]:
    """Exception names of an ``except`` clause (tuple-aware)."""
    if isinstance(node, ast.Name):
        return [node.id]
    if isinstance(node, ast.Attribute):
        return [node.attr]
    if isinstance(node, ast.Tuple):
        out: List[str] = []
        for element in node.elts:
            out.extend(_exception_names(element))
        return out
    return []


class ErrorTaxonomyChecker(Checker):
    name = "error-taxonomy"
    description = (
        "no bare excepts; broad excepts only at documented boundaries; "
        "raises use repro.errors types"
    )
    rules = ("bare-except", "broad-except", "foreign-raise")

    def check_module(
        self, module: ParsedModule, project: Project
    ) -> Iterator[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ExceptHandler):
                if node.type is None:
                    findings.append(
                        Finding(
                            path=module.path,
                            line=node.lineno,
                            col=node.col_offset,
                            rule="bare-except",
                            message=(
                                "bare `except:` also swallows "
                                "KeyboardInterrupt/SystemExit — name the "
                                "exceptions (a repro.errors type, or "
                                "`Exception` at a documented boundary)"
                            ),
                        )
                    )
                else:
                    broad = [
                        name
                        for name in _exception_names(node.type)
                        if name in _BROAD
                    ]
                    if broad:
                        findings.append(
                            Finding(
                                path=module.path,
                                line=node.lineno,
                                col=node.col_offset,
                                rule="broad-except",
                                message=(
                                    f"`except {broad[0]}` outside a "
                                    f"documented process/connection "
                                    f"boundary — catch repro.errors types, "
                                    f"or suppress with a justification if "
                                    f"this IS a boundary"
                                ),
                            )
                        )
            elif isinstance(node, ast.Raise) and node.exc is not None:
                exc = node.exc
                name = None
                if isinstance(exc, ast.Call) and isinstance(
                    exc.func, ast.Name
                ):
                    name = exc.func.id
                elif isinstance(exc, ast.Name):
                    name = exc.id
                if name in config.FORBIDDEN_RAISES:
                    findings.append(
                        Finding(
                            path=module.path,
                            line=node.lineno,
                            col=node.col_offset,
                            rule="foreign-raise",
                            message=(
                                f"raise of builtin {name!r} — cross-module "
                                f"failures must be repro.errors types so "
                                f"callers can catch one taxonomy"
                            ),
                        )
                    )
        return iter(findings)
