"""The repro-lint core: parsed modules, findings, suppressions, runner.

``repro-lint`` is the project's own static-analysis layer: the
concurrency and protocol invariants PR 5/PR 6 introduced (lock-guarded
fields, thread-sharded counters, opcode/handler totality, the error
taxonomy) are enforced here by machine instead of by code review. The
framework is deliberately small:

* :class:`ParsedModule` — one source file: its AST, raw lines, and the
  ``# repro-lint: disable=<rule>`` suppression map extracted from the
  token stream (the AST drops comments, so suppressions are collected
  with :mod:`tokenize`).
* :class:`Project` — every parsed module of one run, so cross-file
  checkers (wire-protocol totality) can see both sides of a contract.
* :class:`Checker` — the plugin API: a checker declares the rule names
  it can emit and yields :class:`Finding` objects for one module (or
  for the whole project via :meth:`Checker.check_project`).
* :func:`run_analysis` — parse, run every checker, filter suppressed
  findings, return the survivors sorted by location.

Suppression forms (rule-keyed, so a disable never silences more than
it names):

* trailing on the offending line::

      self._lock.acquire()  # repro-lint: disable=raw-acquire -- why

* a standalone comment on the line directly above the offending line.

Everything after ``--`` is a human justification and is ignored by the
matcher; ``disable=all`` suppresses every rule on that line.
"""

from __future__ import annotations

import ast
import io
import json
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set

#: the comment marker every suppression / annotation starts with
MARKER = "# repro-lint:"


@dataclass(frozen=True)
class Finding:
    """One rule violation, anchored to a file position."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: [{self.rule}] {self.message}"

    def to_json(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }


def _parse_directive(comment: str) -> Optional[Dict[str, str]]:
    """Parse one ``# repro-lint: key=value`` comment; ``None`` if it is
    not a repro-lint directive. A ``-- justification`` suffix is
    stripped (it is for humans)."""
    text = comment.strip()
    if not text.startswith(MARKER):
        return None
    body = text[len(MARKER):].strip()
    body = body.split("--", 1)[0].strip()
    out: Dict[str, str] = {}
    for part in body.split():
        if "=" not in part:
            continue
        key, _, value = part.partition("=")
        out[key.strip()] = value.strip()
    return out


@dataclass
class ParsedModule:
    """One parsed source file plus its comment-derived metadata."""

    path: str          #: path as given on the command line / to the runner
    relpath: str       #: normalized, repo-relative-ish path for matching
    source: str
    tree: ast.Module
    #: line → rule names disabled on that line ("all" disables any rule)
    suppressions: Dict[int, Set[str]] = field(default_factory=dict)
    #: line → lock names asserted held by a ``holds=<lock>`` directive
    #: (scope: the enclosing function, anchored at its ``def`` body)
    holds: Dict[int, Set[str]] = field(default_factory=dict)

    @classmethod
    def parse(cls, path: Path, root: Optional[Path] = None) -> "ParsedModule":
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
        relpath = str(path)
        if root is not None:
            try:
                relpath = str(path.resolve().relative_to(root.resolve()))
            except ValueError:
                relpath = str(path)
        module = cls(
            path=str(path),
            relpath=relpath.replace("\\", "/"),
            source=source,
            tree=tree,
        )
        module._collect_directives()
        return module

    def _collect_directives(self) -> None:
        reader = io.StringIO(self.source).readline
        try:
            tokens = list(tokenize.generate_tokens(reader))
        except (tokenize.TokenError, IndentationError):  # pragma: no cover
            return  # an unparsable token stream has already failed ast.parse
        #: physical lines that hold only a comment (suppress the NEXT line)
        standalone: Set[int] = set()
        code_lines: Set[int] = set()
        for tok in tokens:
            if tok.type in (
                tokenize.NL,
                tokenize.NEWLINE,
                tokenize.INDENT,
                tokenize.DEDENT,
                tokenize.ENCODING,
                tokenize.ENDMARKER,
            ):
                continue
            if tok.type == tokenize.COMMENT:
                directive = _parse_directive(tok.string)
                if directive is None:
                    continue
                line = tok.start[0]
                disabled = directive.get("disable")
                if disabled:
                    rules = {r for r in disabled.split(",") if r}
                    self.suppressions.setdefault(line, set()).update(rules)
                    standalone.add(line)
                held = directive.get("holds")
                if held:
                    locks = {h for h in held.split(",") if h}
                    self.holds.setdefault(line, set()).update(locks)
            else:
                code_lines.add(tok.start[0])
        # a standalone suppression comment covers the next code line,
        # skipping over blank lines and comment continuation lines
        last_code = max(code_lines, default=0)
        for line in standalone:
            if line in code_lines:
                continue  # trailing comment: covers its own line only
            rules = self.suppressions.get(line, set())
            target = line + 1
            while target not in code_lines and target <= last_code:
                target += 1
            self.suppressions.setdefault(target, set()).update(rules)

    def is_suppressed(self, line: int, rule: str) -> bool:
        rules = self.suppressions.get(line)
        if not rules:
            return False
        return rule in rules or "all" in rules

    def held_locks_for(self, node: ast.AST) -> Set[str]:
        """Locks asserted held (``holds=`` directives) inside ``node``'s
        line span — used to mark helper methods whose caller holds the
        lock."""
        start = getattr(node, "lineno", None)
        end = getattr(node, "end_lineno", None)
        if start is None or end is None:
            return set()
        out: Set[str] = set()
        for line, locks in self.holds.items():
            if start <= line <= end:
                out.update(locks)
        return out


@dataclass
class Project:
    """Every module of one analysis run (cross-file checkers need both
    sides of a contract in view at once)."""

    modules: List[ParsedModule]

    def find(self, suffix: str) -> Optional[ParsedModule]:
        """The module whose relpath ends with ``suffix`` (e.g.
        ``kv/wire.py``), or ``None`` when it is outside this run."""
        for module in self.modules:
            if module.relpath.endswith(suffix):
                return module
        return None


class Checker:
    """Base class of one repro-lint checker plugin.

    Subclasses set :attr:`name` (the checker id), :attr:`rules` (every
    rule name they may emit — the suppression keys), and override
    :meth:`check_module` and/or :meth:`check_project`.
    """

    name: str = ""
    description: str = ""
    rules: Sequence[str] = ()

    def check_module(
        self, module: ParsedModule, project: Project
    ) -> Iterator[Finding]:
        return iter(())

    def check_project(self, project: Project) -> Iterator[Finding]:
        return iter(())


def iter_python_files(paths: Sequence[str]) -> Iterator[Path]:
    """Every ``.py`` file under the given files/directories, skipping
    caches and hidden directories, in a stable order."""
    seen: Set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_file() and path.suffix == ".py":
            candidates: Iterable[Path] = [path]
        elif path.is_dir():
            candidates = sorted(path.rglob("*.py"))
        else:
            raise FileNotFoundError(f"no such file or directory: {raw}")
        for candidate in candidates:
            parts = candidate.parts
            if any(
                part == "__pycache__" or part.startswith(".")
                for part in parts
            ):
                continue
            resolved = candidate.resolve()
            if resolved in seen:
                continue
            seen.add(resolved)
            yield candidate


def load_project(
    paths: Sequence[str], root: Optional[Path] = None
) -> Project:
    modules = [
        ParsedModule.parse(path, root=root)
        for path in iter_python_files(paths)
    ]
    return Project(modules=modules)


def run_analysis(
    paths: Sequence[str],
    checkers: Sequence[Checker],
    rules: Optional[Set[str]] = None,
    root: Optional[Path] = None,
) -> List[Finding]:
    """Parse ``paths``, run ``checkers``, return unsuppressed findings.

    ``rules`` restricts the run to a subset of rule names (``None`` =
    all). Findings are sorted by (path, line, col, rule).
    """
    project = load_project(paths, root=root)
    by_path = {module.path: module for module in project.modules}
    findings: List[Finding] = []
    for checker in checkers:
        raw: List[Finding] = []
        for module in project.modules:
            raw.extend(checker.check_module(module, project))
        raw.extend(checker.check_project(project))
        for finding in raw:
            if rules is not None and finding.rule not in rules:
                continue
            module = by_path.get(finding.path)
            if module is not None and module.is_suppressed(
                finding.line, finding.rule
            ):
                continue
            findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def render_findings(findings: Sequence[Finding], fmt: str) -> str:
    if fmt == "json":
        return json.dumps(
            [finding.to_json() for finding in findings], indent=2
        )
    lines = [finding.render() for finding in findings]
    if findings:
        lines.append(f"{len(findings)} finding(s)")
    return "\n".join(lines)
