"""Module entry point: ``python -m repro.analysis <paths>``."""

import sys

from repro.analysis.cli import main

sys.exit(main())
