"""Lock-discipline checker: guarded fields, raw acquires, blocking calls.

Three rules over the locking contracts of ``docs/ARCHITECTURE.md``:

* ``guarded-field`` — a mutation of a field registered in
  :data:`repro.analysis.config.GUARDED_FIELDS` must happen lexically
  inside ``with self.<lock>`` (the write side, for RWLock guards).
  ``__init__`` is exempt (the object is not shared yet); helpers whose
  *caller* holds the lock carry a ``# repro-lint: holds=<lock>``
  directive.
* ``raw-acquire`` — ``.acquire()`` / ``.acquire_read()`` /
  ``.acquire_write()`` outside a ``with`` is flagged unless the very
  next statement is a ``try`` whose ``finally`` releases (the
  context-manager implementation pattern); a bare ``.release*()``
  outside a ``finally`` is flagged symmetrically.
* ``lock-blocking-call`` — a blocking call (``time.sleep``, socket
  I/O, the wire-protocol helpers, subprocess waits) while lexically
  holding any lock is flagged: it turns a shared data-structure guard
  into an I/O convoy.

The lexical model is deliberately conservative: it tracks ``with``
nesting and simple local aliases (``x = self._entries``) inside one
function body; nested ``def``/``lambda`` bodies reset the held-lock
set (a closure runs later, not under the enclosing ``with``).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis import config
from repro.analysis.core import Checker, Finding, ParsedModule, Project

#: (owner, lock, mode): owner is "self" or "" (module level); mode is
#: "mutex", "read" or "write"
_HeldToken = Tuple[str, str, str]

_ACQUIRE_NAMES = ("acquire", "acquire_read", "acquire_write")
_RELEASE_NAMES = ("release", "release_read", "release_write")


def _dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a pure Name/Attribute chain, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _lockish_name(name: str) -> bool:
    lowered = name.lower()
    return any(
        marker in lowered for marker in ("lock", "_gate", "_cond", "mutex")
    )


def _with_tokens(item: ast.withitem) -> List[_HeldToken]:
    """The held-lock tokens one ``with`` item contributes (empty when
    the context manager is not lock-like)."""
    expr = item.context_expr
    # with self._lock.read() / .write()  (and module-level rwlocks)
    if (
        isinstance(expr, ast.Call)
        and isinstance(expr.func, ast.Attribute)
        and expr.func.attr in ("read", "write")
    ):
        base = expr.func.value
        if (
            isinstance(base, ast.Attribute)
            and isinstance(base.value, ast.Name)
            and base.value.id == "self"
        ):
            return [("self", base.attr, expr.func.attr)]
        if isinstance(base, ast.Name):
            return [("", base.id, expr.func.attr)]
        return []
    # with self._lock:  /  with _REGISTRY_LOCK:  /  with samples_lock:
    if (
        isinstance(expr, ast.Attribute)
        and isinstance(expr.value, ast.Name)
        and expr.value.id == "self"
    ):
        if _lockish_name(expr.attr):
            return [("self", expr.attr, "mutex")]
        return []
    if isinstance(expr, ast.Name) and _lockish_name(expr.id):
        return [("", expr.id, "mutex")]
    return []


def _specs_for(
    module: ParsedModule,
) -> Optional[Dict[Optional[str], Tuple[config.GuardSpec, ...]]]:
    for suffix, per_class in config.GUARDED_FIELDS.items():
        if module.relpath.endswith(suffix):
            return per_class
    return None


class _FunctionScanner:
    """Scan one function body with lexical held-lock tracking."""

    def __init__(
        self,
        checker: "LockDisciplineChecker",
        module: ParsedModule,
        specs: Sequence[config.GuardSpec],
        func: ast.AST,
        findings: List[Finding],
    ) -> None:
        self.checker = checker
        self.module = module
        self.specs = specs
        self.findings = findings
        #: local name → guarded field it aliases (x = self._entries)
        self.aliases: Dict[str, str] = {}
        self.base_held: Set[_HeldToken] = set()
        for lock in module.held_locks_for(func):
            # a holds= directive asserts the caller took the lock in
            # whatever mode the guard needs
            for mode in ("mutex", "read", "write"):
                self.base_held.add(("self", lock, mode))
                self.base_held.add(("", lock, mode))

    # -- guard resolution ---------------------------------------------------

    def _guard_satisfied(
        self, spec: config.GuardSpec, held: Set[_HeldToken]
    ) -> bool:
        for owner in ("self", ""):
            if spec.kind == config.RWLOCK:
                if (owner, spec.lock, "write") in held:
                    return True
            else:
                if (owner, spec.lock, "mutex") in held:
                    return True
        return False

    def _spec_for_field(self, field: str) -> Optional[config.GuardSpec]:
        for spec in self.specs:
            if field in spec.fields:
                return spec
        return None

    def _resolve_base(self, node: ast.AST) -> Optional[str]:
        """The guarded-field name a mutation base refers to, if any.

        Handles ``self.F``, a module-level ``F``, and one level of
        local aliasing (``x = self.F``).
        """
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            if self._spec_for_field(node.attr) is not None:
                return node.attr
            return None
        if isinstance(node, ast.Name):
            if self._spec_for_field(node.id) is not None:
                return node.id
            return self.aliases.get(node.id)
        return None

    def _mutation_bases(self, stmt: ast.stmt) -> Iterator[Tuple[str, ast.AST]]:
        """Guarded fields this statement mutates, with anchor nodes."""

        def targets_of(node: ast.AST) -> Iterator[ast.AST]:
            if isinstance(node, ast.Tuple) or isinstance(node, ast.List):
                for element in node.elts:
                    yield from targets_of(element)
            else:
                yield node

        def base_of_target(target: ast.AST) -> Optional[str]:
            # self.F = ... | self.F[k] = ... | self.F.attr = ... |
            # alias[k] = ... — all mutate F (one container level deep)
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
                and self._spec_for_field(target.attr) is not None
            ):
                return target.attr  # direct rebinding of the field
            if isinstance(target, (ast.Subscript, ast.Attribute)):
                return self._resolve_base(target.value)
            return None

        if isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            raw_targets = (
                stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
            )
            for raw in raw_targets:
                for target in targets_of(raw):
                    field = base_of_target(target)
                    if field is not None:
                        yield field, target
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                field = base_of_target(target)
                if field is not None:
                    yield field, target
        elif isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
            call = stmt.value
            if (
                isinstance(call.func, ast.Attribute)
                and call.func.attr in config.MUTATING_METHODS
            ):
                field = self._resolve_base(call.func.value)
                if field is not None:
                    yield field, call

    def _note_aliases(self, stmt: ast.stmt) -> None:
        if not isinstance(stmt, ast.Assign):
            return
        if len(stmt.targets) != 1 or not isinstance(stmt.targets[0], ast.Name):
            return
        field = self._resolve_base(stmt.value)
        if field is not None:
            self.aliases[stmt.targets[0].id] = field

    # -- statement walk -----------------------------------------------------

    def scan(self, body: Sequence[ast.stmt], check_guards: bool) -> None:
        self._scan_block(
            body, set(self.base_held), check_guards, in_finally=False
        )

    def _flag(self, rule: str, node: ast.AST, message: str) -> None:
        self.findings.append(
            Finding(
                path=self.module.path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0),
                rule=rule,
                message=message,
            )
        )

    def _scan_block(
        self,
        body: Sequence[ast.stmt],
        held: Set[_HeldToken],
        check_guards: bool,
        in_finally: bool,
    ) -> None:
        for index, stmt in enumerate(body):
            self._note_aliases(stmt)
            if check_guards:
                for field, anchor in self._mutation_bases(stmt):
                    spec = self._spec_for_field(field)
                    if spec is None or self._guard_satisfied(spec, held):
                        continue
                    side = (
                        f"with ...{spec.lock}.write()"
                        if spec.kind == config.RWLOCK
                        else f"with ...{spec.lock}"
                    )
                    self._flag(
                        "guarded-field",
                        anchor,
                        f"mutation of lock-guarded field {field!r} "
                        f"outside `{side}` (see GUARDED_FIELDS in "
                        f"repro/analysis/config.py)",
                    )
            self._scan_expressions(stmt, held)
            self._scan_acquires(stmt, body, index, in_finally)
            # recurse into compound statements
            if isinstance(stmt, ast.With):
                inner = set(held)
                for item in stmt.items:
                    inner.update(_with_tokens(item))
                self._scan_block(stmt.body, inner, check_guards, in_finally)
            elif isinstance(stmt, (ast.If, ast.While)):
                self._scan_block(stmt.body, held, check_guards, in_finally)
                self._scan_block(stmt.orelse, held, check_guards, in_finally)
            elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                self._scan_block(stmt.body, held, check_guards, in_finally)
                self._scan_block(stmt.orelse, held, check_guards, in_finally)
            elif isinstance(stmt, ast.Try):
                self._scan_block(stmt.body, held, check_guards, in_finally)
                for handler in stmt.handlers:
                    self._scan_block(
                        handler.body, held, check_guards, in_finally
                    )
                self._scan_block(stmt.orelse, held, check_guards, in_finally)
                self._scan_block(
                    stmt.finalbody, held, check_guards, in_finally=True
                )
            elif isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                # a nested def runs later: fresh lexical context
                self.checker.scan_function(
                    self.module, self.specs, stmt, self.findings,
                    check_guards=check_guards,
                )

    # -- expression-level rules ---------------------------------------------

    def _scan_expressions(
        self, stmt: ast.stmt, held: Set[_HeldToken]
    ) -> None:
        """Blocking calls under a held lock (any lock-like ``with``)."""
        if not held:
            return
        if isinstance(
            stmt, (ast.With, ast.FunctionDef, ast.AsyncFunctionDef)
        ):
            # only this statement's own headers; bodies recurse separately
            nodes: List[ast.AST] = (
                [item.context_expr for item in stmt.items]
                if isinstance(stmt, ast.With)
                else []
            )
        elif isinstance(stmt, (ast.If, ast.While)):
            nodes = [stmt.test]
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            nodes = [stmt.iter]
        elif isinstance(stmt, ast.Try):
            nodes = []
        else:
            nodes = [stmt]
        for root in nodes:
            for node in ast.walk(root):
                if not isinstance(node, ast.Call):
                    continue
                dotted = _dotted_name(node.func)
                blocking = None
                if dotted is not None and dotted in config.BLOCKING_DOTTED:
                    blocking = dotted
                elif (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr in config.BLOCKING_METHODS
                ):
                    blocking = node.func.attr
                if blocking is not None:
                    locks = ", ".join(sorted(t[1] for t in held))
                    self._flag(
                        "lock-blocking-call",
                        node,
                        f"blocking call {blocking!r} while holding "
                        f"lock(s) {locks} — release before I/O",
                    )

    def _scan_acquires(
        self,
        stmt: ast.stmt,
        body: Sequence[ast.stmt],
        index: int,
        in_finally: bool,
    ) -> None:
        """Raw ``.acquire*()`` / ``.release*()`` outside the sanctioned
        shapes (``with``, or acquire-then-``try/finally``-release)."""
        if not isinstance(stmt, (ast.Expr, ast.Return)):
            return
        value = stmt.value
        if (
            not isinstance(value, ast.Call)
            or not isinstance(value.func, ast.Attribute)
        ):
            return
        name = value.func.attr
        if name in _ACQUIRE_NAMES:
            follower = body[index + 1] if index + 1 < len(body) else None
            if isinstance(follower, ast.Try) and any(
                isinstance(fin_node, ast.Call)
                and isinstance(fin_node.func, ast.Attribute)
                and fin_node.func.attr in _RELEASE_NAMES
                for fin_stmt in follower.finalbody
                for fin_node in ast.walk(fin_stmt)
            ):
                return  # acquire immediately guarded by try/finally release
            self._flag(
                "raw-acquire",
                value,
                f"raw .{name}() — use `with` (or follow immediately "
                f"with try/finally releasing the lock)",
            )
        elif name in _RELEASE_NAMES and not in_finally:
            self._flag(
                "raw-acquire",
                value,
                f".{name}() outside a finally block — an exception "
                f"between acquire and release leaks the lock",
            )


class LockDisciplineChecker(Checker):
    name = "lock-discipline"
    description = (
        "guarded fields mutate under their lock; no raw acquires; "
        "no blocking calls under a lock"
    )
    rules = ("guarded-field", "raw-acquire", "lock-blocking-call")

    def check_module(
        self, module: ParsedModule, project: Project
    ) -> Iterator[Finding]:
        findings: List[Finding] = []
        per_class = _specs_for(module)
        module_specs: Tuple[config.GuardSpec, ...] = ()
        if per_class is not None:
            module_specs = per_class.get(None, ())

        for node in module.tree.body:
            if isinstance(node, ast.ClassDef):
                class_specs: Tuple[config.GuardSpec, ...] = module_specs
                if per_class is not None:
                    class_specs = class_specs + per_class.get(node.name, ())
                for item in node.body:
                    if isinstance(
                        item, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ):
                        self.scan_function(
                            module, class_specs, item, findings,
                            check_guards=item.name != "__init__",
                        )
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.scan_function(
                    module, module_specs, node, findings, check_guards=True
                )
        return iter(findings)

    def scan_function(
        self,
        module: ParsedModule,
        specs: Sequence[config.GuardSpec],
        func: ast.AST,
        findings: List[Finding],
        check_guards: bool = True,
    ) -> None:
        scanner = _FunctionScanner(self, module, specs, func, findings)
        scanner.scan(func.body, check_guards)  # type: ignore[attr-defined]
