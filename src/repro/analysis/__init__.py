"""repro-lint: the project's own static-analysis layer.

AST-based checkers enforcing the concurrency and protocol invariants
that used to live only in docstrings and review comments: lock
discipline, sharded-counter accounting, wire-protocol totality and the
error taxonomy. Run as ``python -m repro.analysis src/`` (a blocking
CI gate); see ``docs/ARCHITECTURE.md`` § "Checked invariants".
"""

from repro.analysis.cli import all_checkers, analyze, main
from repro.analysis.core import (
    Checker,
    Finding,
    ParsedModule,
    Project,
    run_analysis,
)

__all__ = [
    "Checker",
    "Finding",
    "ParsedModule",
    "Project",
    "all_checkers",
    "analyze",
    "main",
    "run_analysis",
]
