"""``python -m repro.analysis`` — the repro-lint command line.

Usage::

    python -m repro.analysis src/ [tests/ ...] [--format json|text]
                                  [--rules rule1,rule2] [--list-rules]

Exit status: ``0`` when clean, ``1`` when findings survive
suppressions, ``2`` on usage errors. JSON output is a list of
``{path, line, col, rule, message}`` objects (the CI gate parses it).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence, Set

from repro.analysis.core import Checker, Finding, render_findings, run_analysis
from repro.analysis.counter_accounting import CounterAccountingChecker
from repro.analysis.error_taxonomy import ErrorTaxonomyChecker
from repro.analysis.lock_discipline import LockDisciplineChecker
from repro.analysis.wire_protocol import WireProtocolChecker


def all_checkers() -> List[Checker]:
    """One instance of every registered checker (the plugin registry)."""
    return [
        LockDisciplineChecker(),
        CounterAccountingChecker(),
        WireProtocolChecker(),
        ErrorTaxonomyChecker(),
    ]


def analyze(
    paths: Sequence[str],
    rules: Optional[Set[str]] = None,
    root: Optional[Path] = None,
) -> List[Finding]:
    """Library entry point: run every checker over ``paths``."""
    return run_analysis(
        paths, all_checkers(), rules=rules, root=root or Path.cwd()
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "repro-lint: project-specific concurrency/protocol static "
            "analysis (lock discipline, counter accounting, wire-protocol "
            "totality, error taxonomy)"
        ),
    )
    parser.add_argument(
        "paths", nargs="*", help="files or directories to analyze"
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--rules",
        default=None,
        help="comma-separated rule names to run (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list every checker and its rules, then exit",
    )
    args = parser.parse_args(argv)

    checkers = all_checkers()
    if args.list_rules:
        for checker in checkers:
            print(f"{checker.name}: {checker.description}")
            for rule in checker.rules:
                print(f"  - {rule}")
        return 0
    if not args.paths:
        parser.print_usage(sys.stderr)
        print(
            "error: provide at least one path (or --list-rules)",
            file=sys.stderr,
        )
        return 2

    rules: Optional[Set[str]] = None
    if args.rules is not None:
        rules = {rule.strip() for rule in args.rules.split(",") if rule.strip()}
        known = {rule for checker in checkers for rule in checker.rules}
        unknown = rules - known
        if unknown:
            print(
                f"error: unknown rule(s): {', '.join(sorted(unknown))} "
                f"(see --list-rules)",
                file=sys.stderr,
            )
            return 2

    try:
        findings = run_analysis(
            args.paths, checkers, rules=rules, root=Path.cwd()
        )
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except SyntaxError as exc:
        print(f"error: cannot parse {exc.filename}: {exc}", file=sys.stderr)
        return 2

    output = render_findings(findings, args.format)
    if output:
        print(output)
    return 1 if findings else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
