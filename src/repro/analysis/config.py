"""Project-specific configuration of the repro-lint checkers.

This is the machine-readable form of the locking/accounting contracts
documented in ``docs/ARCHITECTURE.md`` ("Locking strategy per layer")
and :mod:`repro.locks`. Keeping it as one declarative table — instead
of scattering knowledge through the checkers — mirrors the project's
explicit-knob idiom: when a layer's locking story changes, this file
changes in the same commit, and the lint gate enforces the new story
repo-wide.

The registry is keyed by module *suffix* (``kv/cluster.py`` matches
``src/repro/kv/cluster.py``), so the checkers work no matter which
directory the CLI was pointed at.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Optional, Tuple

#: lock kinds a :class:`GuardSpec` can name — a ``mutex`` guard is
#: satisfied by ``with self.<lock>``; an ``rwlock`` guard requires the
#: write side (``with self.<lock>.write()``) for mutations
MUTEX = "mutex"
RWLOCK = "rwlock"


@dataclass(frozen=True)
class GuardSpec:
    """One lock and the attribute names it guards (mutation-side)."""

    lock: str
    kind: str
    fields: FrozenSet[str]


def _guard(lock: str, kind: str, *fields: str) -> GuardSpec:
    return GuardSpec(lock=lock, kind=kind, fields=frozenset(fields))


#: module suffix → class name (``None`` = module level) → guard specs.
#: A mutation of a listed field outside a ``with`` on its lock (write
#: side for rwlocks) is a ``guarded-field`` finding. ``__init__`` is
#: exempt (the object is not shared until the constructor returns),
#: and a ``# repro-lint: holds=<lock>`` directive inside a helper marks
#: it as called with the lock held.
GUARDED_FIELDS: Dict[str, Dict[Optional[str], Tuple[GuardSpec, ...]]] = {
    "repro/service/service.py": {
        "QueryService": (
            _guard(
                "_gate", MUTEX,
                "_stats", "_sessions", "_draining", "_closed",
                "_next_session_id",
            ),
        ),
    },
    "repro/kv/cluster.py": {
        "KVCluster": (
            _guard(
                "_lock", RWLOCK,
                "nodes", "_down", "_tombstone_keys",
                "_tombstone_prefixes", "_caches", "_closed",
                "_versions",
            ),
            _guard("_meta_lock", MUTEX, "_namespaces"),
        ),
    },
    "repro/mvcc/versions.py": {
        "VersionStore": (
            _guard("_lock", MUTEX, "_birth", "_chains"),
        ),
    },
    "repro/mvcc/epoch.py": {
        "EpochManager": (
            _guard(
                "_lock", MUTEX,
                "_published", "_next_commit", "_pins",
            ),
        ),
    },
    "repro/mvcc/txn.py": {
        "TransactionManager": (
            _guard("_commit_lock", MUTEX, "_commits_since_gc"),
        ),
    },
    "repro/kv/node.py": {
        "StorageNode": (
            # the engine's mutating surface must hold the per-node op
            # mutex; reads are deliberately unchecked (snapshot_scan
            # documents the guarded-read paths). crash/restart swap the
            # store object itself, so the field assignment is guarded
            # too, as is the crash flag readers consult
            _guard("_op_lock", MUTEX, "store", "_crashed"),
        ),
    },
    "repro/kv/wal.py": {
        "WriteAheadLog": (
            _guard(
                "_lock", MUTEX,
                "_file", "_path", "_stats", "_unsynced",
            ),
        ),
    },
    "repro/kv/checkpoint.py": {
        "NodeDurability": (
            _guard(
                "_lock", MUTEX,
                "_wal", "_seq", "_records_at_checkpoint",
                "last_recovery",
            ),
        ),
    },
    "repro/kv/cache.py": {
        "BlockCache": (
            _guard(
                "_lock", MUTEX,
                "_entries", "_epoch", "_floor_epoch",
                "_invalidated_keys", "_invalidated_namespaces",
            ),
        ),
    },
    "repro/kv/server.py": {
        "NodeServer": (
            _guard("_stats_lock", MUTEX, "_stats"),
            _guard("_store_lock", MUTEX, "store"),
        ),
    },
    "repro/kv/remote.py": {
        "NodeClient": (
            _guard("_lock", MUTEX, "_pool", "_closed"),
        ),
        None: (
            _guard("_REGISTRY_LOCK", MUTEX, "_PROCESS_REGISTRY"),
        ),
    },
    "repro/index/manager.py": {
        "IndexManager": (
            _guard("_lock", MUTEX, "_indexes"),
        ),
    },
    "repro/locks.py": {
        "ShardSet": (
            _guard("_lock", MUTEX, "_entries", "_retired"),
        ),
        "RWLock": (
            _guard(
                "_cond", MUTEX,
                "_readers", "_writers_waiting", "_write_owner",
                "_write_depth",
            ),
        ),
    },
}

#: method names that mutate their receiver — a call
#: ``self.<guarded>.<name>(...)`` counts as a mutation of the guarded
#: field (reads like ``.get``/``.keys`` are never checked)
MUTATING_METHODS: FrozenSet[str] = frozenset({
    "append", "extend", "insert", "remove", "pop", "popitem", "clear",
    "update", "setdefault", "add", "discard", "move_to_end",
    # the storage-engine write surface (guarded via the ``store`` field)
    "put", "multi_put", "delete", "multi_delete", "drop_prefix",
})

#: attribute/property names that yield the CALLING THREAD's private
#: counter shard — increments through these are the sanctioned pattern
#: (``repro.locks.ShardSet`` routing); see counter_accounting.py
SHARD_ACCESSORS: FrozenSet[str] = frozenset({
    "local",      # IndexStats.local
    "counters",   # StorageNode.counters
    "_stats",     # BlockCache._stats (thread-shard property)
})

#: calls returning a live shard the calling thread owns
SHARD_CALLS: FrozenSet[str] = frozenset({"local", "peek"})

#: blocking calls that must never run while a lock is held: module-level
#: dotted names...
BLOCKING_DOTTED: FrozenSet[str] = frozenset({
    "time.sleep",
    "socket.create_connection",
    "subprocess.run",
    "subprocess.call",
    "subprocess.check_call",
    "subprocess.check_output",
    "os.system",
})

#: ...and method names (socket I/O and the wire-protocol helpers —
#: ubiquitous enough in this codebase to matter, specific enough not to
#: collide with ordinary container methods)
BLOCKING_METHODS: FrozenSet[str] = frozenset({
    "sendall", "recv", "accept", "connect",
    "send_frame", "recv_frame",
})

#: builtin exceptions that must not be raised directly — cross-module
#: failures travel as ``repro.errors`` types so callers can catch one
#: taxonomy (ValueError/TypeError/KeyError/... stay allowed for local
#: argument validation, the stdlib idiom)
FORBIDDEN_RAISES: FrozenSet[str] = frozenset({
    "Exception", "BaseException", "RuntimeError", "StandardError",
    "SystemError", "EnvironmentError", "IOError", "OSError",
})

#: wire-codec helpers exempt from the ``encode_<T>``/``decode_<T>``
#: pairing rule, with their asymmetric counterparts documented
WIRE_PAIR_EXCEPTIONS: Dict[str, str] = {
    "encode_frame": "recv_frame reads frames off a socket",
    "encode_ok": "decode_response splits status from body for all statuses",
    "encode_error": "decode_error_message decodes both error statuses",
    "decode_response": "encode_ok/encode_error build the two status shapes",
    "decode_error_message": "paired with encode_error",
}

#: opcode constants that are handled outside the server's ``_run_op``
#: dispatch (connection-lifecycle opcodes), mapped to where
WIRE_LIFECYCLE_OPS: Dict[str, str] = {
    "OP_SHUTDOWN": "_handle_request acks then exits the process",
}
