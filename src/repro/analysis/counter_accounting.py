"""Counter-accounting checker: stats increments go through shards.

PR 5 made every hot counter *thread-sharded* (:class:`repro.locks.ShardSet`):
each thread increments a private shard, aggregates sum the shards. A
bare ``+=`` on a *shared* stats instance silently loses increments
under concurrency — the exact bug class the sharding removed — so this
checker flags it.

What counts as a stats field is discovered from the tree itself: every
``@dataclass`` that defines an ``add(self, other)`` method is a
shard-able counter set (``NodeCounters``, ``CacheStats``,
``IndexCounters``, ...), and its annotated field names form the
protected vocabulary. An augmented assignment to one of those field
names is then only allowed when the receiver is provably the calling
thread's own shard:

* through a shard accessor property (``self.counters``, ``stats.local``,
  the cache's ``_stats``) or a ``.local()`` / ``.peek()`` call;
* through a local alias of one of those;
* on a freshly constructed private instance (``total = NodeCounters()``
  or a ``.copy()`` / ``thread_stats()`` / ``counters_total()`` result);
* inside the stats dataclass's own methods (``add``/``reset`` fold
  fields by design).

Iterating ``.all()`` and mutating the yielded shards is flagged: those
are other threads' live shards (aggregation sweeps may only *read*
them; the one sanctioned fold lives in ``ShardSet`` itself).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set

from repro.analysis import config
from repro.analysis.core import Checker, Finding, ParsedModule, Project

#: call names whose result is a private copy, safe to mutate
_FRESH_CALLS = frozenset({
    "copy", "thread_stats", "thread_counters", "counters_total",
    "snapshot", "replace",
})


def _is_dataclass_with_add(node: ast.ClassDef) -> bool:
    decorated = any(
        (isinstance(dec, ast.Name) and dec.id == "dataclass")
        or (
            isinstance(dec, ast.Call)
            and isinstance(dec.func, ast.Name)
            and dec.func.id == "dataclass"
        )
        for dec in node.decorator_list
    )
    if not decorated:
        return False
    return any(
        isinstance(item, ast.FunctionDef) and item.name == "add"
        for item in node.body
    )


def _stats_classes(project: Project) -> Dict[str, Set[str]]:
    """name → annotated field names, for every stats dataclass."""
    out: Dict[str, Set[str]] = {}
    for module in project.modules:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if not _is_dataclass_with_add(node):
                continue
            fields = {
                item.target.id
                for item in node.body
                if isinstance(item, ast.AnnAssign)
                and isinstance(item.target, ast.Name)
            }
            out[node.name] = fields
    return out


def _terminal_accessor(node: ast.AST) -> Optional[str]:
    """The last attribute/call name of a receiver chain: ``self.stats.local``
    → ``local``; ``self._shards.local()`` → ``local`` (call form)."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
        return node.func.attr
    return None


class _FunctionState:
    __slots__ = ("approved", "shared")

    def __init__(self) -> None:
        self.approved: Set[str] = set()
        self.shared: Set[str] = set()


class CounterAccountingChecker(Checker):
    name = "counter-accounting"
    description = (
        "stats-dataclass fields are incremented only through per-thread "
        "shards, never on shared instances"
    )
    rules = ("counter-accounting",)

    def check_module(
        self, module: ParsedModule, project: Project
    ) -> Iterator[Finding]:
        stats_classes = _stats_classes(project)
        field_names: Set[str] = set()
        for fields in stats_classes.values():
            field_names.update(fields)
        if not field_names:
            return iter(())
        findings: List[Finding] = []
        for node in module.tree.body:
            if isinstance(node, ast.ClassDef):
                if node.name in stats_classes:
                    continue  # add()/reset() fold their own fields
                for item in node.body:
                    if isinstance(item, ast.FunctionDef):
                        self._scan_function(
                            module, item, stats_classes, field_names,
                            findings,
                        )
            elif isinstance(node, ast.FunctionDef):
                self._scan_function(
                    module, node, stats_classes, field_names, findings
                )
        return iter(findings)

    # -- receiver classification --------------------------------------------

    def _classify(
        self,
        node: ast.AST,
        state: _FunctionState,
        stats_classes: Dict[str, Set[str]],
    ) -> str:
        """``"approved"`` / ``"shared"`` / ``"unknown"`` for a receiver."""
        if isinstance(node, ast.Name):
            if node.id in state.approved:
                return "approved"
            if node.id in state.shared:
                return "shared"
            return "unknown"
        terminal = _terminal_accessor(node)
        if terminal in config.SHARD_ACCESSORS:
            return "approved"
        if isinstance(node, ast.Call):
            if terminal in config.SHARD_CALLS or terminal in _FRESH_CALLS:
                return "approved"
            if (
                isinstance(node.func, ast.Name)
                and node.func.id in stats_classes
            ):
                return "approved"  # fresh private instance
            return "unknown"
        if isinstance(node, ast.Attribute):
            # self.X.field / obj.X.field with X not a shard accessor:
            # X names a shared instance attribute
            if isinstance(node.value, (ast.Name, ast.Attribute)):
                return "shared"
        return "unknown"

    def _note_bindings(
        self,
        stmt: ast.stmt,
        state: _FunctionState,
        stats_classes: Dict[str, Set[str]],
    ) -> None:
        if isinstance(stmt, ast.Assign):
            if len(stmt.targets) == 1 and isinstance(
                stmt.targets[0], ast.Name
            ):
                name = stmt.targets[0].id
                klass = self._classify(stmt.value, state, stats_classes)
                if klass == "approved":
                    state.approved.add(name)
                    state.shared.discard(name)
                elif klass == "shared":
                    state.shared.add(name)
                    state.approved.discard(name)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            # for shard in <x>.all(): — the yielded shards belong to
            # OTHER threads; mutating them races their owners
            if (
                isinstance(stmt.target, ast.Name)
                and isinstance(stmt.iter, ast.Call)
                and _terminal_accessor(stmt.iter) == "all"
            ):
                state.shared.add(stmt.target.id)
                state.approved.discard(stmt.target.id)

    # -- the scan -----------------------------------------------------------

    def _scan_function(
        self,
        module: ParsedModule,
        func: ast.FunctionDef,
        stats_classes: Dict[str, Set[str]],
        field_names: Set[str],
        findings: List[Finding],
    ) -> None:
        state = _FunctionState()

        def ordered(body) -> Iterator[ast.stmt]:
            for stmt in body:
                yield stmt
                for child in ast.iter_child_nodes(stmt):
                    if isinstance(child, ast.stmt):
                        yield from ordered([child])
                    elif hasattr(child, "body") and isinstance(
                        child, (ast.ExceptHandler,)
                    ):
                        yield from ordered(child.body)

        for stmt in ordered(func.body):
            self._note_bindings(stmt, state, stats_classes)
            if not isinstance(stmt, ast.AugAssign):
                continue
            target = stmt.target
            if not isinstance(target, ast.Attribute):
                continue
            if target.attr not in field_names:
                continue
            klass = self._classify(target.value, state, stats_classes)
            if klass == "approved" or klass == "unknown":
                continue
            findings.append(
                Finding(
                    path=module.path,
                    line=target.lineno,
                    col=target.col_offset,
                    rule="counter-accounting",
                    message=(
                        f"increment of stats field {target.attr!r} on a "
                        f"shared instance — route it through a per-thread "
                        f"shard (ShardSet .local(), the `counters`/`local` "
                        f"accessors) so concurrent increments are not lost"
                    ),
                )
            )
