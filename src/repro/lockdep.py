"""A runtime lock-order sanitizer (mini-lockdep) for the repro stack.

Deadlocks are ordering bugs: thread 1 takes lock A then B while thread 2
takes B then A. Neither run deadlocks on its own — the bug only fires
when the two interleave, which stress tests hit rarely and CI almost
never. This module removes the interleaving requirement: it records the
*ordering* each thread uses (an edge A→B whenever B is acquired with A
held) into one global graph, and the moment any acquisition would close
a cycle in that graph it raises :class:`repro.errors.LockOrderError`
with the witness stacks of both sides. A latent ABBA deadlock is thus
caught by ANY run that exercises both orderings — even a single-threaded
one, even when no deadlock actually happened.

The sanitizer is **opt-in** and zero-cost when off:

* ``REPRO_LOCKDEP=1`` in the environment (checked once, at import of
  :mod:`repro.locks`) makes the lock factories in ``repro.locks`` return
  instrumented primitives; anything else returns raw ``threading``
  objects with no wrapper at all.
* tests can force it per-instance via :func:`instrument` /
  :class:`LockdepRegistry` regardless of the environment.

What is tracked: ``threading.Lock`` / ``RLock`` / ``Condition`` built
through :func:`repro.locks.make_lock` / ``make_rlock`` /
``make_condition``, and both sides of :class:`repro.locks.RWLock` (the
read and write side map to the same node — a read/write inversion on the
same pair of RWLocks is still an inversion). Each lock is a *node* named
at construction (``"ShardSet._lock"``) so reports speak the
architecture's language, with a serial number to separate instances.

Known limitations, accepted on purpose: ``Condition.wait`` releases the
lock and re-acquires it — we model the re-acquire as a fresh acquisition
(correct for ordering); edges are never forgotten, so the graph
monotonically grows toward the union of all orderings ever seen (that is
the point); per-instance tracking means two instances of the same class
are distinct nodes (a self-join ABBA between two ShardSets is real and
is reported).
"""

from __future__ import annotations

import os
import threading
import traceback
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.errors import LockOrderError

__all__ = [
    "LockdepRegistry",
    "enabled",
    "global_registry",
    "instrument",
]


def enabled() -> bool:
    """True when the environment opts into lock-order checking."""
    return os.environ.get("REPRO_LOCKDEP", "") not in ("", "0")


def _capture_stack(skip: int = 2) -> str:
    """A compact formatted stack for witness reports (most recent last)."""
    frames = traceback.format_stack()[:-skip]
    return "".join(frames[-6:])


class LockdepRegistry:
    """The global ordering graph plus per-thread held-lock stacks.

    Nodes are instrumented locks (by identity); a directed edge A→B means
    "some thread acquired B while holding A", and carries the stack that
    first created it. Before recording a new edge A→B the registry walks
    the existing graph from B: if A is reachable, the new edge closes a
    cycle and :class:`LockOrderError` is raised with both witnesses.
    """

    def __init__(self) -> None:
        self._mu = threading.Lock()
        #: edges[(holder_name, acquired_name)] = witness stack of first use
        self._edges: Dict[Tuple[str, str], str] = {}
        #: adjacency over node names, for cycle walks
        self._succ: Dict[str, Set[str]] = {}
        self._held = threading.local()
        self._serials: Dict[str, int] = {}

    # -- naming -------------------------------------------------------------

    def name_for(self, base: str) -> str:
        """A unique node name ``base#N`` for a new lock instance."""
        with self._mu:
            serial = self._serials.get(base, 0)
            self._serials[base] = serial + 1
        return f"{base}#{serial}"

    # -- per-thread held stack ----------------------------------------------

    def _stack(self) -> List[str]:
        stack = getattr(self._held, "stack", None)
        if stack is None:
            stack = []
            self._held.stack = stack
        return stack

    def held_names(self) -> List[str]:
        """The calling thread's currently-held nodes, outermost first."""
        return list(self._stack())

    # -- the two entry points the wrappers call -----------------------------

    def note_acquire(self, name: str) -> None:
        """Record that the calling thread acquired ``name``; raise
        :class:`LockOrderError` if this ordering closes a cycle."""
        stack = self._stack()
        if stack:
            holder = stack[-1]
            if holder != name:  # reentrant re-acquire adds no edge
                self._add_edge(holder, name)
        stack.append(name)

    def note_release(self, name: str) -> None:
        """Record a release. Out-of-stack-order releases are legal (e.g.
        hand-over-hand locking) — the *innermost* matching entry goes."""
        stack = self._stack()
        for i in range(len(stack) - 1, -1, -1):
            if stack[i] == name:
                del stack[i]
                return
        # releasing something never noted: a wrapper bug, not a user bug
        raise AssertionError(  # pragma: no cover
            f"lockdep: release of {name} which was never acquired"
        )

    # -- graph --------------------------------------------------------------

    def _add_edge(self, holder: str, acquired: str) -> None:
        key = (holder, acquired)
        with self._mu:
            if key in self._edges:
                return
            path = self._find_path(acquired, holder)
            if path is not None:
                witness_fwd = _capture_stack(skip=3)
                # the existing chain acquired→…→holder inverted by this
                inverted = [
                    (a, b, self._edges[(a, b)])
                    for a, b in zip(path, path[1:])
                ]
                raise LockOrderError(self._report(
                    holder, acquired, witness_fwd, inverted
                ))
            self._edges[key] = _capture_stack(skip=3)
            self._succ.setdefault(holder, set()).add(acquired)

    def _find_path(self, src: str, dst: str) -> Optional[List[str]]:
        """A path src→…→dst in the edge graph, or None (iterative DFS;
        called with ``_mu`` held)."""
        if src == dst:
            return [src]
        parent: Dict[str, str] = {}
        todo = [src]
        seen = {src}
        while todo:
            node = todo.pop()
            for nxt in self._succ.get(node, ()):
                if nxt in seen:
                    continue
                parent[nxt] = node
                if nxt == dst:
                    path = [dst]
                    while path[-1] != src:
                        path.append(parent[path[-1]])
                    path.reverse()
                    return path
                seen.add(nxt)
                todo.append(nxt)
        return None

    @staticmethod
    def _report(
        holder: str,
        acquired: str,
        witness_fwd: str,
        inverted: List[Tuple[str, str, str]],
    ) -> str:
        lines = [
            "lock-order inversion (latent deadlock):",
            f"  this thread holds {holder} and is acquiring {acquired}",
            "  but the opposite ordering was already established:",
        ]
        for a, b, stack in inverted:
            lines.append(f"    {a} -> {b}, first seen at:")
            lines.extend("      " + ln for ln in stack.splitlines())
        lines.append(f"  acquisition of {acquired} under {holder} at:")
        lines.extend("    " + ln for ln in witness_fwd.splitlines())
        return "\n".join(lines)

    # -- introspection (tests) ---------------------------------------------

    def edges(self) -> Dict[Tuple[str, str], str]:
        with self._mu:
            return dict(self._edges)


#: process-wide registry used by the ``repro.locks`` factories
global_registry = LockdepRegistry()


class _InstrumentedLock:
    """Wraps a Lock/RLock, reporting acquire/release to a registry.

    Supports the full ``threading.Lock`` surface the repo uses: context
    manager, ``acquire(blocking=..., timeout=...)`` (only a *successful*
    acquire is recorded), ``release``, ``locked``.
    """

    __slots__ = ("_inner", "_name", "_reg")

    def __init__(self, inner: Any, name: str, reg: LockdepRegistry) -> None:
        self._inner = inner
        self._name = name
        self._reg = reg

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        # repro-lint: disable=raw-acquire -- this IS the lock shim; the
        # caller's own with/try-finally discipline applies one level up
        got = self._inner.acquire(blocking, timeout)
        if got:
            self._reg.note_acquire(self._name)
        return got

    def release(self) -> None:
        # repro-lint: disable=raw-acquire -- forwarding shim, see acquire
        self._inner.release()
        self._reg.note_release(self._name)

    def locked(self) -> bool:
        return self._inner.locked()

    def __enter__(self) -> bool:
        return self.acquire()  # repro-lint: disable=raw-acquire -- shim

    def __exit__(self, *exc: object) -> None:
        self.release()  # repro-lint: disable=raw-acquire -- shim

    def __repr__(self) -> str:  # pragma: no cover
        return f"<lockdep {self._name} wrapping {self._inner!r}>"


class _InstrumentedRLock(_InstrumentedLock):
    """RLock wrapper: same protocol (reentrancy is handled by the
    registry — a re-acquire of the held name adds no edge), plus the
    internal hooks ``Condition`` uses to release around ``wait``."""

    __slots__ = ()

    def locked(self) -> bool:  # RLock in 3.10/3.11 lacks .locked()
        if hasattr(self._inner, "locked"):  # pragma: no branch
            return self._inner.locked()
        return False  # pragma: no cover

    # Condition(wait) internals: fully release, then restore the depth.
    def _release_save(self) -> Any:
        state = self._inner._release_save()
        self._reg.note_release(self._name)
        return state

    def _acquire_restore(self, state: Any) -> None:
        self._inner._acquire_restore(state)
        self._reg.note_acquire(self._name)

    def _is_owned(self) -> bool:
        return self._inner._is_owned()


def instrument(
    lock: Any, name: str, registry: Optional[LockdepRegistry] = None
) -> Any:
    """Wrap ``lock`` (a ``threading.Lock``/``RLock``) so its orderings are
    checked against ``registry`` (the global one by default)."""
    reg = registry if registry is not None else global_registry
    node = reg.name_for(name)
    if hasattr(lock, "_release_save"):
        return _InstrumentedRLock(lock, node, reg)
    return _InstrumentedLock(lock, node, reg)


def instrument_condition(
    name: str, registry: Optional[LockdepRegistry] = None
) -> threading.Condition:
    """A ``Condition`` over an instrumented RLock: every ``with cond:``
    and every re-acquire after ``wait`` feeds the ordering graph."""
    reg = registry if registry is not None else global_registry
    inner = instrument(threading.RLock(), name, reg)
    return threading.Condition(inner)
