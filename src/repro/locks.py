"""Shared concurrency primitives for the thread-safe KV stack.

The query service (:mod:`repro.service`) executes many queries at once
over one shared storage stack, so every layer with hot mutable state
needs an explicit locking story (documented per layer in
``docs/ARCHITECTURE.md``). This module holds the two primitives those
layers share:

* :class:`RWLock` — a writer-preferring readers/writer lock. Reads
  (point gets, scans, lookups) run concurrently; structural writes
  (membership churn, namespace drops, relational updates) are exclusive.
  The write side is reentrant, and a thread holding the write lock may
  take the read side as a no-op, so exclusive operations can call the
  shared-path helpers they are composed of.
* :class:`ShardSet` — the machinery behind per-thread *sharded
  counters*: each thread accumulates into a private shard (no lost
  ``+=`` increments, no hot-path locks) and readers sum the shards for a
  consistent aggregate. Counter objects stay plain dataclasses; only
  the shard routing lives here.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import (
    Any,
    Callable,
    Generic,
    Iterator,
    List,
    Optional,
    Tuple,
    TypeVar,
    cast,
)

from repro import lockdep
from repro.errors import LockError

T = TypeVar("T")

#: latched once at import: instrumenting later would miss early edges
#: and make the wrapper overhead data-dependent mid-run
_LOCKDEP = lockdep.enabled()


def make_lock(name: str) -> Any:
    """A ``threading.Lock``, wrapped for lock-order checking when
    ``REPRO_LOCKDEP=1``. ``name`` should read like the field it guards
    (``"NodeServer._store_lock"``) — it is the node label in reports.
    Typed ``Any``: the instrumented wrapper and the raw lock share the
    acquire/release/context-manager surface, not a nominal base."""
    lock = threading.Lock()
    if _LOCKDEP:
        return lockdep.instrument(lock, name)
    return lock


def make_rlock(name: str) -> Any:
    """Like :func:`make_lock`, for a reentrant lock."""
    lock = threading.RLock()
    if _LOCKDEP:
        return lockdep.instrument(lock, name)
    return lock


def make_condition(name: str) -> threading.Condition:
    """A ``threading.Condition`` whose underlying RLock participates in
    lock-order checking when ``REPRO_LOCKDEP=1`` (every ``with cond:``
    and every re-acquire after ``wait`` feeds the graph)."""
    if _LOCKDEP:
        return lockdep.instrument_condition(name)
    return threading.Condition()


class RWLock:
    """A writer-preferring readers/writer lock.

    * any number of readers may hold the lock together;
    * a writer holds it alone;
    * once a writer is waiting, new readers queue behind it (no writer
      starvation under a steady read load);
    * the write side is reentrant per thread, and read acquisition by
      the thread that holds the write lock is a no-op (an exclusive
      operation may call shared-path code).

    Readers must not nest read acquisitions around blocking calls that
    themselves take the read side — the layers below keep their read
    critical sections flat (snapshot, release, then post-process).
    """

    def __init__(self, name: str = "RWLock") -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writers_waiting = 0
        self._write_owner: int | None = None
        self._write_depth = 0
        #: lock-order node: read and write side map to the SAME node —
        #: a read/write inversion across two RWLocks is still a deadlock
        self._dep_name = (
            lockdep.global_registry.name_for(name) if _LOCKDEP else None
        )

    # -- read side --------------------------------------------------------

    def acquire_read(self) -> None:
        if self._write_owner == threading.get_ident():
            return  # write holder may read (no-op reentry)
        with self._cond:
            while self._write_owner is not None or self._writers_waiting:
                self._cond.wait()
            self._readers += 1
        if self._dep_name is not None:
            lockdep.global_registry.note_acquire(self._dep_name)

    def release_read(self) -> None:
        if self._write_owner == threading.get_ident():
            return
        with self._cond:
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()
        if self._dep_name is not None:
            lockdep.global_registry.note_release(self._dep_name)

    @contextmanager
    def read(self) -> Iterator[None]:
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    # -- write side -------------------------------------------------------

    def acquire_write(self) -> None:
        me = threading.get_ident()
        with self._cond:
            if self._write_owner == me:
                self._write_depth += 1
                if self._dep_name is not None:
                    lockdep.global_registry.note_acquire(self._dep_name)
                return
            self._writers_waiting += 1
            try:
                while self._write_owner is not None or self._readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._write_owner = me
            self._write_depth = 1
        if self._dep_name is not None:
            lockdep.global_registry.note_acquire(self._dep_name)

    def release_write(self) -> None:
        with self._cond:
            if self._write_owner != threading.get_ident():
                raise LockError("release_write by a non-owner thread")
            self._write_depth -= 1
            if self._write_depth == 0:
                self._write_owner = None
                self._cond.notify_all()
        if self._dep_name is not None:
            lockdep.global_registry.note_release(self._dep_name)

    @contextmanager
    def write(self) -> Iterator[None]:
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()


class ShardSet(Generic[T]):
    """Per-thread shards of a counter set, with a stable registry.

    Each thread gets a private shard on first use (via
    ``threading.local``, NOT the thread ident — idents are recycled
    after a thread dies, and a recycled ident must not let a new
    thread read or reset a dead thread's counts). Shards are only ever
    *mutated* by their owning thread, so hot-path increments need no
    lock and are never lost.

    Dead threads' history is preserved WITHOUT unbounded growth: the
    registry remembers each shard's owning thread, and aggregation /
    registration sweeps fold shards of finished threads into one
    *retired* accumulator (safe — a finished thread can no longer
    mutate its shard), keeping the registry O(live threads) on
    long-lived stacks with thread churn. ``T`` must provide
    ``add(other)``; ``reset()`` is required only by callers that reset.
    """

    __slots__ = ("_factory", "_local", "_entries", "_retired", "_lock")

    def __init__(self, factory: Callable[[], T]) -> None:
        self._factory = factory
        self._local = threading.local()
        #: (owning thread, shard) for every live registration
        self._entries: List[Tuple[threading.Thread, T]] = []
        #: folded history of finished threads (created lazily)
        self._retired: Optional[T] = None
        self._lock = make_lock("ShardSet._lock")

    def _sweep_locked(self) -> None:
        # repro-lint: holds=_lock -- every caller takes self._lock first
        survivors: List[Tuple[threading.Thread, T]] = []
        for thread, shard in self._entries:
            if thread.is_alive():
                survivors.append((thread, shard))
            else:
                if self._retired is None:
                    self._retired = self._factory()
                self._retired.add(shard)  # type: ignore[attr-defined]
        self._entries = survivors

    def local(self) -> T:
        """The calling thread's shard (created and registered on first
        use)."""
        shard = cast(Optional[T], getattr(self._local, "shard", None))
        if shard is None:
            shard = self._factory()
            with self._lock:
                self._sweep_locked()
                self._entries.append((threading.current_thread(), shard))
            self._local.shard = shard
        return shard

    def peek(self) -> Optional[T]:
        """The calling thread's shard, or ``None`` if it never counted."""
        return cast(Optional[T], getattr(self._local, "shard", None))

    def all(self) -> List[T]:
        """Every live shard plus the retired accumulator (aggregation
        and reset sweeps — a reset must reset the retired history too)."""
        with self._lock:
            self._sweep_locked()
            out = [shard for _, shard in self._entries]
            if self._retired is not None:
                out.append(self._retired)
            return out
