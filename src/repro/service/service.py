"""The concurrent query service: sessions, admission control, deadlines.

:class:`QueryService` turns a single-client system facade
(:class:`~repro.systems.sql_over_nosql.SQLOverNoSQL` or
:class:`~repro.systems.sql_over_nosql.ZidianSystem`) into a multi-client
**service**: many sessions issue queries at once against one shared
storage stack. This is the missing dimension of the paper's claim —
scan-free plans bound *per-query* KV work, and the service is what lets
many such bounded queries proceed together.

Architecture
------------

* **Sessions** (:class:`Session`) are per-client handles opened with
  :meth:`QueryService.open_session`. They carry per-session accounting
  and are the unit the traffic driver paces its closed loop on.
* **Execution** runs on a bounded thread pool of ``max_workers``
  threads. :meth:`Session.submit` is the asynchronous path (returns a
  :class:`QueryTicket`); :meth:`Session.execute` runs synchronously on
  the *calling* thread (the caller is its own worker), which is what
  the virtual-time traffic driver and simple scripts use.
* **Admission control**: at most ``max_workers`` queries run and at
  most ``max_queued`` wait. Beyond that the service *sheds load* —
  :class:`~repro.errors.ServiceOverloadedError` — instead of building
  an unbounded queue; clients back off and retry.
* **Deadlines / cancellation**: a per-query deadline bounds how long a
  query may wait for a worker
  (:class:`~repro.errors.QueryDeadlineError` when it expires first);
  a queued ticket can be cancelled outright.
* **MVCC by default (PR 9)**: when the system has a transaction
  surface (``enable_transactions``) the service runs queries *and*
  updates under the **shared** side of its
  :class:`~repro.locks.RWLock` — readers pin a snapshot epoch and see
  exactly one committed state while writers install the next one
  through the version overlay (:mod:`repro.mvcc`), so the update
  stream no longer stalls the analytic path. The write side is now
  exclusive only for membership/DDL (online index create/drop).
  ``mvcc=False`` (or ``REPRO_MVCC=0``) restores the PR-5 behavior:
  updates take the write lock and queries wait. Either way no query
  observes a half-applied Δ (the property tests replay the history
  against a single-threaded oracle).
* **Transactions**: :meth:`Session.begin` opens a multi-statement
  :class:`ServiceTransaction` — several ``apply_updates`` across
  several relations commit atomically at one epoch, spanning the
  relational store, the TaaV/BaaV stores and every secondary index.
* **Drain / shutdown**: :meth:`drain` stops admitting and waits for
  the in-flight work; :meth:`close` drains and tears the pool down.

The layers underneath have their own locking story (cluster membership,
per-node store mutexes, cache LRU, index catalog — see
``docs/ARCHITECTURE.md``), so even the *shared* read path is safe: the
service lock only adds the read/update atomicity queries expect.
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import CancelledError, Future, ThreadPoolExecutor
from dataclasses import dataclass, replace
from typing import Dict, Iterable, Optional

from repro.errors import (
    QueryDeadlineError,
    ServiceClosedError,
    ServiceOverloadedError,
    TransactionError,
)
from repro.locks import RWLock, make_condition
from repro.mvcc import DEFAULT_GC_INTERVAL

#: default bound on queries waiting for a worker before load shedding
DEFAULT_MAX_QUEUED = 16

#: environment override for the MVCC default ("0" restores the PR-5
#: writer-exclusive lock; anything else — or unset — keeps MVCC on)
MVCC_ENV = "REPRO_MVCC"


@dataclass
class ServiceStats:
    """Point-in-time snapshot of the service's admission accounting.

    Returned by :meth:`QueryService.stats` as a copy taken under the
    admission lock, so the fields are mutually consistent
    (``submitted == completed + failed + expired + cancelled +
    in_flight + queued`` at the moment of the snapshot).
    """

    submitted: int = 0
    completed: int = 0
    failed: int = 0
    shed: int = 0
    expired: int = 0
    cancelled: int = 0
    updates_applied: int = 0
    transactions_committed: int = 0
    transactions_aborted: int = 0
    in_flight: int = 0
    queued: int = 0
    peak_in_flight: int = 0
    peak_queued: int = 0
    sessions_opened: int = 0
    sessions_closed: int = 0

    def __str__(self) -> str:
        out = (
            f"submitted={self.submitted} completed={self.completed} "
            f"failed={self.failed} shed={self.shed} "
            f"expired={self.expired} cancelled={self.cancelled} "
            f"updates={self.updates_applied} "
            f"peak={self.peak_in_flight}r/{self.peak_queued}q"
        )
        if self.transactions_committed or self.transactions_aborted:
            out += (
                f" txn={self.transactions_committed}c/"
                f"{self.transactions_aborted}a"
            )
        return out


class QueryTicket:
    """A submitted query: a future plus its admission bookkeeping."""

    def __init__(
        self,
        session: "Session",
        sql: str,
        deadline_at: Optional[float],
        bucket: str,
    ) -> None:
        self.session = session
        self.sql = sql
        #: ``time.monotonic()`` instant the queue wait must end by
        self.deadline_at = deadline_at
        #: which admission bucket the ticket currently occupies
        #: ("queued" until a worker picks it up, then "in_flight")
        self.bucket = bucket
        self.future: Optional[Future] = None

    def result(self, timeout: Optional[float] = None):
        """Block for the :class:`QueryResult`; re-raises query errors."""
        assert self.future is not None
        return self.future.result(timeout=timeout)

    def cancel(self) -> bool:
        """Cancel if still queued; running queries are not interrupted."""
        assert self.future is not None
        return self.future.cancel()

    def done(self) -> bool:
        assert self.future is not None
        return self.future.done()


class Session:
    """One client's handle on the service (open → queries → close)."""

    def __init__(
        self, service: "QueryService", session_id: int, client: str
    ) -> None:
        self.service = service
        self.session_id = session_id
        self.client = client
        self.closed = False
        #: per-session tallies (maintained under the service's lock)
        self.queries = 0
        self.updates = 0
        self.errors = 0

    # -- query paths ------------------------------------------------------

    def execute(self, sql: str, deadline_ms: Optional[float] = None):
        """Run ``sql`` synchronously on the calling thread."""
        return self.service.execute(self, sql, deadline_ms=deadline_ms)

    def submit(
        self, sql: str, deadline_ms: Optional[float] = None
    ) -> QueryTicket:
        """Queue ``sql`` on the worker pool; returns a ticket."""
        return self.service.submit(self, sql, deadline_ms=deadline_ms)

    def apply_updates(
        self,
        relation: str,
        inserts: Iterable = (),
        deletes: Iterable = (),
    ) -> None:
        """Apply a relational Δ atomically (no query sees it half-done)."""
        self.service.apply_updates(self, relation, inserts, deletes)

    def begin(self) -> "ServiceTransaction":
        """Open a multi-statement transaction (MVCC services only)."""
        return self.service.begin(self)

    # -- lifecycle --------------------------------------------------------

    def close(self) -> None:
        self.service._close_session(self)

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self.closed else "open"
        return (
            f"Session(id={self.session_id}, client={self.client!r}, "
            f"{state}, queries={self.queries})"
        )


class ServiceTransaction:
    """A multi-statement transaction bound to one session.

    Statements buffer client-side and install atomically at one commit
    epoch (:meth:`commit`), spanning every touched relation and its
    secondary indexes. The commit runs under the service's **shared**
    lock — concurrent queries keep reading their snapshots; concurrent
    transactions serialize on the system's commit mutex. Usable as a
    context manager: commits on clean exit, aborts when the body
    raised.
    """

    def __init__(self, service: "QueryService", session: Session) -> None:
        self.service = service
        self.session = session
        self._txn = service.system.begin()

    @property
    def state(self) -> str:
        """``"open"``, ``"committed"`` or ``"aborted"``."""
        return self._txn.state

    @property
    def epoch(self) -> Optional[int]:
        """The commit epoch (set by a successful :meth:`commit`)."""
        return self._txn.epoch

    def apply_updates(
        self,
        relation: str,
        inserts: Iterable = (),
        deletes: Iterable = (),
    ) -> None:
        """Buffer one relational Δ; installed atomically at commit."""
        self._txn.apply_updates(relation, inserts, deletes)

    def commit(self) -> int:
        """Install every buffered statement at one commit epoch."""
        return self.service._commit_transaction(self.session, self._txn)

    def abort(self) -> None:
        """Discard the buffered statements (nothing was installed)."""
        self.service._abort_transaction(self.session, self._txn)

    def __enter__(self) -> "ServiceTransaction":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._txn.state != "open":
            return
        if exc_type is None:
            self.commit()
        else:
            self.abort()

    def __repr__(self) -> str:
        return (
            f"ServiceTransaction(session={self.session.session_id}, "
            f"{self._txn.state}, statements={self._txn.statements})"
        )


class QueryService:
    """A bounded, admission-controlled, multi-session query service.

    ``system`` is a loaded :class:`SQLOverNoSQL` or
    :class:`ZidianSystem` (anything with ``execute(sql)`` and
    ``apply_updates``). ``max_workers`` defaults to the system's
    intra-query worker knob — one pool thread per modeled worker.

    ``mvcc`` turns snapshot isolation + transactions on (the default
    when the system supports it; ``None`` defers to the ``REPRO_MVCC``
    environment variable). ``snapshot_gc_interval`` paces the version
    store's amortized GC (commits between sweeps).
    """

    def __init__(
        self,
        system,
        max_workers: Optional[int] = None,
        max_queued: int = DEFAULT_MAX_QUEUED,
        default_deadline_ms: Optional[float] = None,
        mvcc: Optional[bool] = None,
        snapshot_gc_interval: int = DEFAULT_GC_INTERVAL,
    ) -> None:
        if max_workers is None:
            max_workers = getattr(system, "workers", 4)
        if max_workers <= 0:
            raise ValueError("max_workers must be positive")
        if max_queued < 0:
            raise ValueError("max_queued must be >= 0")
        self.system = system
        self.max_workers = max_workers
        self.max_queued = max_queued
        self.default_deadline_ms = default_deadline_ms
        if mvcc is None:
            mvcc = os.environ.get(MVCC_ENV, "1") != "0"
        #: snapshot reads + transactions on (queries and updates share
        #: the service lock) vs the PR-5 writer-exclusive behavior
        self.mvcc = bool(
            mvcc and hasattr(system, "enable_transactions")
        )
        self.snapshot_gc_interval = snapshot_gc_interval
        if self.mvcc:
            system.enable_transactions(
                snapshot_gc_interval=snapshot_gc_interval
            )
        self._pool = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="query-svc"
        )
        #: reads share / updates exclude (service-level atomicity)
        self._rw = RWLock("QueryService._rw")
        #: admission accounting + drain signaling
        self._gate = make_condition("QueryService._gate")
        self._stats = ServiceStats()
        self._draining = False
        self._closed = False
        self._sessions: Dict[int, Session] = {}
        self._next_session_id = 1

    # -- sessions ---------------------------------------------------------

    def open_session(self, client: str = "") -> Session:
        with self._gate:
            if self._closed or self._draining:
                raise ServiceClosedError(
                    "service is draining; no new sessions"
                )
            session = Session(self, self._next_session_id, client)
            self._next_session_id += 1
            self._sessions[session.session_id] = session
            self._stats.sessions_opened += 1
            return session

    def _close_session(self, session: Session) -> None:
        with self._gate:
            if not session.closed:
                session.closed = True
                self._sessions.pop(session.session_id, None)
                self._stats.sessions_closed += 1

    @property
    def active_sessions(self) -> int:
        with self._gate:
            return len(self._sessions)

    # -- admission --------------------------------------------------------

    def _deadline_at(
        self, deadline_ms: Optional[float]
    ) -> Optional[float]:
        if deadline_ms is None:
            deadline_ms = self.default_deadline_ms
        if deadline_ms is None:
            return None
        return time.monotonic() + deadline_ms / 1000.0

    def _check_open(self, session: Session) -> None:
        """Gate must be held."""
        if self._closed:
            raise ServiceClosedError("service is closed")
        if self._draining:
            raise ServiceClosedError("service is draining")
        if session.closed:
            raise ServiceClosedError(
                f"session {session.session_id} is closed"
            )

    def submit(
        self,
        session: Session,
        sql: str,
        deadline_ms: Optional[float] = None,
    ) -> QueryTicket:
        """Asynchronous admission: run on the pool, or shed.

        Admits straight to a worker while fewer than ``max_workers``
        queries are in flight, queues up to ``max_queued`` beyond that,
        sheds (:class:`ServiceOverloadedError`) past both bounds.
        """
        deadline_at = self._deadline_at(deadline_ms)
        with self._gate:
            self._check_open(session)
            if (
                self._stats.in_flight >= self.max_workers
                and self._stats.queued >= self.max_queued
            ):
                self._stats.shed += 1
                raise ServiceOverloadedError(
                    f"{self._stats.in_flight} in flight and "
                    f"{self._stats.queued} queued (bounds: "
                    f"{self.max_workers}+{self.max_queued})"
                )
            if self._stats.in_flight < self.max_workers:
                bucket = "in_flight"
                self._stats.in_flight += 1
            else:
                bucket = "queued"
                self._stats.queued += 1
            self._stats.submitted += 1
            session.queries += 1
            self._note_peaks()
            ticket = QueryTicket(session, sql, deadline_at, bucket)
        try:
            ticket.future = self._pool.submit(self._run, ticket)
        except RuntimeError as exc:
            # the pool shut down between admission and scheduling:
            # reclaim the slot or drain() would wait on it forever
            with self._gate:
                if ticket.bucket == "queued":
                    self._stats.queued -= 1
                else:
                    self._stats.in_flight -= 1
                self._stats.submitted -= 1
                session.queries -= 1
                self._gate.notify_all()
            raise ServiceClosedError("service is closed") from exc
        ticket.future.add_done_callback(
            lambda future: self._on_done(ticket, future)
        )
        return ticket

    def execute(
        self,
        session: Session,
        sql: str,
        deadline_ms: Optional[float] = None,
    ):
        """Synchronous path: the calling thread is its own worker.

        Counted in flight like pooled queries; sheds only past
        ``max_workers + max_queued`` concurrent callers (a synchronous
        caller brings its own thread, so there is nothing to queue).
        """
        deadline_at = self._deadline_at(deadline_ms)
        with self._gate:
            self._check_open(session)
            if self._stats.in_flight >= self.max_workers + self.max_queued:
                self._stats.shed += 1
                raise ServiceOverloadedError(
                    f"{self._stats.in_flight} queries in flight "
                    f"(bound: {self.max_workers}+{self.max_queued})"
                )
            self._stats.in_flight += 1
            self._stats.submitted += 1
            session.queries += 1
            self._note_peaks()
        return self._execute_accounted(session, sql, deadline_at)

    def _note_peaks(self) -> None:
        # repro-lint: holds=_gate -- called from admission paths only
        stats = self._stats
        stats.peak_in_flight = max(stats.peak_in_flight, stats.in_flight)
        stats.peak_queued = max(stats.peak_queued, stats.queued)

    # -- execution --------------------------------------------------------

    def _execute_accounted(
        self, session: Session, sql: str, deadline_at: Optional[float]
    ):
        """Run one admitted query and settle its accounting.

        The single accounting path shared by the synchronous caller
        and the pool workers: the query is already counted in flight;
        this settles it as completed/expired/failed and frees the slot.
        """
        try:
            if deadline_at is not None and time.monotonic() > deadline_at:
                raise QueryDeadlineError(
                    f"deadline expired before execution of {sql!r}"
                )
            with self._rw.read():
                result = self.system.execute(sql)
            with self._gate:
                self._stats.completed += 1
            return result
        except QueryDeadlineError:
            with self._gate:
                self._stats.expired += 1
                session.errors += 1
            raise
        # repro-lint: disable=broad-except -- the worker boundary: settle
        # the accounting for ANY query failure, then re-raise it verbatim
        except Exception:
            with self._gate:
                self._stats.failed += 1
                session.errors += 1
            raise
        finally:
            with self._gate:
                self._stats.in_flight -= 1
                self._gate.notify_all()

    def _run(self, ticket: QueryTicket):
        """Pool-thread body: promote from the queue, then execute."""
        with self._gate:
            if ticket.bucket == "queued":
                self._stats.queued -= 1
                self._stats.in_flight += 1
                ticket.bucket = "in_flight"
        return self._execute_accounted(
            ticket.session, ticket.sql, ticket.deadline_at
        )

    def _on_done(self, ticket: QueryTicket, future: Future) -> None:
        """Reclaim the admission slot of a ticket cancelled in-queue."""
        if not future.cancelled():
            return
        with self._gate:
            if ticket.bucket == "queued":
                self._stats.queued -= 1
            else:
                self._stats.in_flight -= 1
            self._stats.cancelled += 1
            self._gate.notify_all()

    # -- writes -----------------------------------------------------------

    def apply_updates(
        self,
        session: Session,
        relation: str,
        inserts: Iterable = (),
        deletes: Iterable = (),
    ) -> None:
        """Apply a relational Δ atomically with respect to queries.

        With MVCC on (the default) the Δ commits through the version
        overlay under the *shared* lock: snapshot-pinned queries keep
        running and never see it half-applied. Without MVCC it takes
        the write lock and queries wait (the PR-5 behavior). Runs on
        the calling thread: writers are their own workers, and the
        commit mutex (or the exclusive lock) already serializes them,
        so queueing writes behind the pool would only add latency.
        """
        with self._gate:
            self._check_open(session)
        if self.mvcc:
            with self._rw.read():
                self.system.apply_updates(
                    relation, inserts=inserts, deletes=deletes
                )
        else:
            with self._rw.write():
                self.system.apply_updates(
                    relation, inserts=inserts, deletes=deletes
                )
        with self._gate:
            self._stats.updates_applied += 1
            session.updates += 1

    def begin(self, session: Session) -> ServiceTransaction:
        """Open a multi-statement transaction for ``session``."""
        with self._gate:
            self._check_open(session)
        if not self.mvcc:
            raise TransactionError(
                "transactions need MVCC (service constructed with "
                "mvcc=False, REPRO_MVCC=0, or a system without a "
                "transaction surface)"
            )
        return ServiceTransaction(self, session)

    def _commit_transaction(self, session: Session, txn) -> int:
        """Commit a session's transaction under the shared lock."""
        with self._gate:
            self._check_open(session)
        statements = txn.statements
        try:
            with self._rw.read():
                epoch = txn.commit()
        # repro-lint: disable=broad-except -- stats bookkeeping only:
        # the abort counter must tick for every failure mode, and the
        # exception is re-raised unchanged
        except BaseException:
            with self._gate:
                self._stats.transactions_aborted += 1
                session.errors += 1
            raise
        with self._gate:
            self._stats.transactions_committed += 1
            self._stats.updates_applied += statements
            session.updates += statements
        return epoch

    def _abort_transaction(self, session: Session, txn) -> None:
        txn.abort()
        with self._gate:
            self._stats.transactions_aborted += 1

    def create_index(
        self, session: Session, relation: str, attr: str,
        kind: str = "hash",
    ):
        """Online index DDL, exclusive like updates."""
        with self._gate:
            self._check_open(session)
        with self._rw.write():
            return self.system.create_index(relation, attr, kind)

    def drop_index(
        self,
        session: Session,
        relation: str,
        attr: Optional[str] = None,
        kind: Optional[str] = None,
    ) -> int:
        with self._gate:
            self._check_open(session)
        with self._rw.write():
            return self.system.drop_index(relation, attr, kind)

    # -- introspection ----------------------------------------------------

    def stats(self) -> ServiceStats:
        """A consistent snapshot of the admission counters."""
        with self._gate:
            return replace(self._stats)

    # -- lifecycle --------------------------------------------------------

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Stop admitting and wait for in-flight/queued work to finish.

        Returns ``True`` once the service is idle, ``False`` on
        timeout (work still running). Idempotent.
        """
        deadline = (
            time.monotonic() + timeout if timeout is not None else None
        )
        with self._gate:
            self._draining = True
            while self._stats.in_flight or self._stats.queued:
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return False
                self._gate.wait(timeout=remaining)
            return True

    def close(
        self,
        timeout: Optional[float] = None,
        close_system: bool = False,
    ) -> bool:
        """Drain, then shut the pool down. Further queries are refused.

        ``close_system=True`` also closes the underlying system (which
        reaps its cluster's node processes on the socket transport) —
        opt-in because the service does not own a system handed to it,
        and callers may keep querying the system directly after the
        service is gone.
        """
        drained = self.drain(timeout=timeout)
        with self._gate:
            self._closed = True
            for session in list(self._sessions.values()):
                session.closed = True
            self._sessions.clear()
        self._pool.shutdown(wait=True, cancel_futures=True)
        if close_system:
            closer = getattr(self.system, "close", None)
            if closer is not None:
                closer()
        return drained

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        with self._gate:
            return (
                f"QueryService(workers={self.max_workers}, "
                f"max_queued={self.max_queued}, "
                f"sessions={len(self._sessions)}, "
                f"in_flight={self._stats.in_flight})"
            )


__all__ = [
    "DEFAULT_MAX_QUEUED",
    "MVCC_ENV",
    "QueryService",
    "QueryTicket",
    "ServiceStats",
    "ServiceTransaction",
    "Session",
    "CancelledError",
]
