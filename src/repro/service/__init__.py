"""Concurrent query service over the SQL-over-NoSQL systems (PR 5).

Public surface:

* :class:`QueryService` — multi-session, admission-controlled service
  wrapping a loaded system behind a bounded worker pool;
* :class:`Session` / :class:`QueryTicket` — per-client handles and
  asynchronous query futures;
* :class:`ServiceStats` — snapshot-consistent service accounting;
* the service errors live in :mod:`repro.errors`
  (``ServiceOverloadedError``, ``ServiceClosedError``,
  ``QueryDeadlineError``).
"""

from repro.service.service import (
    DEFAULT_MAX_QUEUED,
    QueryService,
    QueryTicket,
    ServiceStats,
    Session,
)

__all__ = [
    "DEFAULT_MAX_QUEUED",
    "QueryService",
    "QueryTicket",
    "ServiceStats",
    "Session",
]
