"""Concurrent query service over the SQL-over-NoSQL systems (PR 5).

Public surface:

* :class:`QueryService` — multi-session, admission-controlled service
  wrapping a loaded system behind a bounded worker pool;
* :class:`Session` / :class:`QueryTicket` — per-client handles and
  asynchronous query futures;
* :class:`ServiceTransaction` — a session-bound multi-statement
  transaction (PR 9: MVCC snapshot isolation, ``REPRO_MVCC`` knob);
* :class:`ServiceStats` — snapshot-consistent service accounting;
* the service errors live in :mod:`repro.errors`
  (``ServiceOverloadedError``, ``ServiceClosedError``,
  ``QueryDeadlineError``, ``TransactionError``).
"""

from repro.service.service import (
    DEFAULT_MAX_QUEUED,
    MVCC_ENV,
    QueryService,
    QueryTicket,
    ServiceStats,
    ServiceTransaction,
    Session,
)

__all__ = [
    "DEFAULT_MAX_QUEUED",
    "MVCC_ENV",
    "QueryService",
    "QueryTicket",
    "ServiceStats",
    "ServiceTransaction",
    "Session",
]
