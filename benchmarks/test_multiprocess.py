"""Shared-nothing multiprocess cluster — wall-clock scaling (PR 6).

Every other benchmark in this directory measures the *calibrated
simulated* clock, because in-process storage nodes share the client
interpreter. The socket transport removes that constraint: each node is
its own OS process behind the wire protocol, so this benchmark measures
**wall-clock** throughput with :func:`repro.workloads.traffic.run_kv_traffic`
(real threads, real sockets, no virtual time).

Workload: a scan-refresh-heavy mix over ``BUCKETS`` bucket namespaces
loaded in shuffled order. Each round inserts one fresh key (dirtying the
owner node's lazy sorted-key cache) and then scans a few buckets — the
first scan after the insert pays the engine's C-level ``sorted()`` over
that node's *entire* keyset. That cost is the shared-nothing lever: with
the same ``TOTAL_KEYS`` spread over 4 node processes, each re-sort
touches a quarter of the keys, so throughput scales with node count even
on a single-core host (the win is each process sorting 1/4 of the data,
not extra cores). Headline gate: >= 2x read throughput at 4 node
processes vs 1.

Point multi-gets are reported too, ungated: they never touch the sort
cache, so they are pure RPC — a 4-process cluster answers a batch with
up to 4 round trips instead of 1, the honest counterpoint that scaling
comes from partitioning the storage work, not from sockets being free.
"""

import os

from harness import fmt, metric, publish, publish_json, render_table

from repro.kv import KVCluster
from repro.workloads.traffic import run_kv_traffic

TOTAL_KEYS = 128_000
BUCKETS = 256
KEYS_PER_BUCKET = TOTAL_KEYS // BUCKETS
SCANS_PER_ROUND = 2
GETS_PER_BATCH = 16
CLIENTS = 2
DURATION_S = 2.0
NODE_COUNTS = (1, 4)
SEED = 0xD15C


def _bucket(b: int) -> str:
    return f"b{b:03d}"


def _load(cluster: KVCluster, seed: int) -> None:
    """Bulk-load shuffled so every node's dict insertion order is random:
    each lazy re-sort then pays the full Timsort, exactly the worst case
    the partitioning divides by the node count."""
    import random

    rng = random.Random(seed)
    buckets = list(range(BUCKETS))
    rng.shuffle(buckets)
    for b in buckets:
        items = [
            (f"k{i:06d}".encode(), b"v%06d" % i)
            for i in range(KEYS_PER_BUCKET)
        ]
        rng.shuffle(items)
        cluster.multi_put(_bucket(b), items)


def _scan_round(counter: list):
    """One closed-loop iteration: 1 fresh insert + SCANS_PER_ROUND full
    bucket scans. Returns the number of pairs read (the read ops)."""

    def round_fn(cluster: KVCluster, rng) -> int:
        counter[0] += 1
        b = rng.randrange(BUCKETS)
        cluster.put(
            _bucket(b), b"fresh%012d" % counter[0], b"v", n_values=1
        )
        reads = 0
        for _ in range(SCANS_PER_ROUND):
            target = _bucket(rng.randrange(BUCKETS))
            for _pair in cluster.scan(target, count_as_gets=False):
                reads += 1
        return reads

    return round_fn


def _get_round(cluster: KVCluster, rng) -> int:
    b = rng.randrange(BUCKETS)
    keys = [
        f"k{rng.randrange(KEYS_PER_BUCKET):06d}".encode()
        for _ in range(GETS_PER_BATCH)
    ]
    values = cluster.multi_get(_bucket(b), keys)
    return len(values)


def run_scaling():
    scans = {}
    gets = {}
    for nodes in NODE_COUNTS:
        with KVCluster(nodes, transport="socket") as cluster:
            _load(cluster, SEED)
            scans[nodes] = run_kv_traffic(
                cluster,
                _scan_round([0]),
                clients=CLIENTS,
                duration_s=DURATION_S,
                seed=SEED,
            )
            gets[nodes] = run_kv_traffic(
                cluster,
                _get_round,
                clients=CLIENTS,
                duration_s=DURATION_S / 2,
                seed=SEED + 1,
            )
    return scans, gets


def test_multiprocess_scaling(once):
    scans, gets = once(run_scaling)

    rows = []
    for nodes in NODE_COUNTS:
        report = scans[nodes]
        rows.append(
            [
                nodes,
                report.rounds,
                fmt(report.read_qps),
                fmt(report.rounds_per_s),
                f"{report.p50_ms:.1f}",
                f"{report.p99_ms:.1f}",
                f"{report.read_qps / scans[NODE_COUNTS[0]].read_qps:.2f}x",
            ]
        )
    get_rows = [
        [
            nodes,
            gets[nodes].rounds,
            fmt(gets[nodes].read_qps),
            f"{gets[nodes].p50_ms:.2f}",
        ]
        for nodes in NODE_COUNTS
    ]
    publish(
        "multiprocess_scaling",
        render_table(
            f"Wall-clock scan-refresh throughput, socket transport — "
            f"{TOTAL_KEYS} keys / {BUCKETS} buckets, {CLIENTS} clients, "
            f"host cpus={os.cpu_count()}",
            ["nodes", "rounds", "read/s", "rounds/s", "p50 ms",
             "p99 ms", "speedup"],
            rows,
        )
        + "\n\n"
        + render_table(
            "Point multi-get throughput (RPC-bound, ungated)",
            ["nodes", "batches", "get/s", "p50 ms"],
            get_rows,
        ),
    )

    base = scans[NODE_COUNTS[0]].read_qps
    speedup = scans[4].read_qps / base
    publish_json(
        "multiprocess",
        [
            metric("scan_read_1n_qps", base, "reads/s"),
            metric("scan_read_4n_qps", scans[4].read_qps, "reads/s"),
            metric("scan_read_4n_speedup", speedup, "x"),
            metric(
                "scan_p99_4n_ms",
                scans[4].p99_ms,
                "ms",
                higher_is_better=False,
            ),
            metric("point_get_4n_qps", gets[4].read_qps, "gets/s"),
        ],
        config={
            "total_keys": TOTAL_KEYS,
            "buckets": BUCKETS,
            "scans_per_round": SCANS_PER_ROUND,
            "clients": CLIENTS,
            "duration_s": DURATION_S,
            "node_counts": list(NODE_COUNTS),
            "transport": "socket",
            "host_cpus": os.cpu_count(),
        },
    )

    # acceptance: partitioning the sort-refresh work >= 2x at 4 processes
    assert speedup >= 2.0, f"scan scaling only {speedup:.2f}x at 4 nodes"
