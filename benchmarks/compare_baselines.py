"""Compare fresh BENCH_*.json results against the committed baselines.

Usage::

    python benchmarks/compare_baselines.py [--threshold 0.20] [--strict]

Reads every ``benchmarks/results/BENCH_<name>.json`` produced by the
benchmark run and diffs each metric against
``benchmarks/baselines/BENCH_<name>.json``. A metric regresses when it
moves against its ``higher_is_better`` direction by more than the
threshold (default 20%).

Fail-soft by default: regressions are printed as warnings (GitHub
``::warning`` annotations when running in Actions) and the exit code
stays 0, so the CI step never blocks a merge — it makes the drop
visible in the PR checks instead. ``--strict`` turns regressions into
exit code 1 for local bisection.

Baselines are committed files: refresh one on purpose by copying the
fresh result over it (``cp benchmarks/results/BENCH_x.json
benchmarks/baselines/``) in the PR that legitimately moves the number.
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
RESULTS_DIR = os.path.join(HERE, "results")
BASELINES_DIR = os.path.join(HERE, "baselines")


def load(path: str) -> dict:
    with open(path) as handle:
        return json.load(handle)


def index_metrics(payload: dict) -> dict:
    return {entry["metric"]: entry for entry in payload.get("metrics", [])}


def compare(threshold: float) -> tuple[list[str], list[str]]:
    """(regressions, notes) across every fresh result with a baseline."""
    regressions: list[str] = []
    notes: list[str] = []
    fresh_paths = sorted(glob.glob(os.path.join(RESULTS_DIR, "BENCH_*.json")))
    if not fresh_paths:
        notes.append("no BENCH_*.json results found — run the benchmarks")
        return regressions, notes
    for fresh_path in fresh_paths:
        name = os.path.basename(fresh_path)
        baseline_path = os.path.join(BASELINES_DIR, name)
        if not os.path.exists(baseline_path):
            notes.append(f"{name}: no committed baseline (skipped)")
            continue
        fresh = index_metrics(load(fresh_path))
        baseline = index_metrics(load(baseline_path))
        for metric_name, base_entry in sorted(baseline.items()):
            if metric_name not in fresh:
                regressions.append(
                    f"{name}: metric {metric_name!r} disappeared"
                )
                continue
            base_value = float(base_entry["value"])
            new_value = float(fresh[metric_name]["value"])
            higher_is_better = bool(
                base_entry.get("higher_is_better", True)
            )
            if base_value == 0:
                continue
            change = (new_value - base_value) / abs(base_value)
            regressed = (
                change < -threshold if higher_is_better
                else change > threshold
            )
            arrow = f"{base_value:.4g} -> {new_value:.4g} ({change:+.1%})"
            if regressed:
                regressions.append(f"{name}: {metric_name} {arrow}")
            else:
                notes.append(f"{name}: {metric_name} {arrow} ok")
    return regressions, notes


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--threshold", type=float, default=0.20,
        help="relative regression tolerance (default 0.20 = 20%%)",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="exit 1 on regression instead of warning",
    )
    args = parser.parse_args(argv)
    regressions, notes = compare(args.threshold)
    for note in notes:
        print(note)
    in_actions = bool(os.environ.get("GITHUB_ACTIONS"))
    for line in regressions:
        if in_actions:
            print(f"::warning title=benchmark regression::{line}")
        else:
            print(f"WARNING: regression: {line}")
    if regressions:
        print(
            f"{len(regressions)} metric(s) regressed beyond "
            f"{args.threshold:.0%} (fail-soft"
            + (", --strict set: failing)" if args.strict else ")")
        )
        return 1 if args.strict else 0
    print("no benchmark regressions beyond the threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
