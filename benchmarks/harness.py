"""Shared benchmark harness: systems, workloads, table rendering.

Every benchmark regenerates one artifact of §9 (a table or figure) at
laptop scale. "time" is the simulated time of the calibrated cost model
(see DESIGN.md substitutions); #get, #data and comm are exact counts from
the real execution. Reports are printed and also written under
``benchmarks/results/``.
"""

from __future__ import annotations

import functools
import json
import os
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.parallel.metrics import ExecutionMetrics
from repro.relational import Database
from repro.systems import SQLOverNoSQL, ZidianSystem
from repro.workloads import airca_generator, mot_generator
from repro.workloads.airca import airca_baav_schema, generate_airca
from repro.workloads.mot import generate_mot, mot_baav_schema
from repro.workloads.tpch import (
    QUERIES as TPCH_QUERIES,
    generate_tpch,
    query_names,
    tpch_baav_schema,
)

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

BACKENDS = ("hbase", "kudu", "cassandra")

#: paper "GB" -> our scale knob. One unit is one dbgen step; the grids in
#: the growth experiments keep the paper's doubling shape.
TPCH_UNIT_SF = 0.00025
MOT_UNIT_SCALE = 4.0
AIRCA_UNIT_SCALE = 1.5


# --------------------------------------------------------------------------
# datasets (cached across benchmark modules)
# --------------------------------------------------------------------------


@functools.lru_cache(maxsize=None)
def tpch_db(units: int) -> Database:
    return generate_tpch(scale_factor=TPCH_UNIT_SF * units, seed=19)


@functools.lru_cache(maxsize=None)
def mot_db(units: int) -> Database:
    return generate_mot(scale=MOT_UNIT_SCALE * units, seed=29)


@functools.lru_cache(maxsize=None)
def airca_db(units: int) -> Database:
    return generate_airca(scale=AIRCA_UNIT_SCALE * units, seed=31)


def dataset(name: str, units: int) -> Database:
    return {"tpch": tpch_db, "mot": mot_db, "airca": airca_db}[name](units)


def baav_schema_for(name: str):
    return {
        "tpch": tpch_baav_schema,
        "mot": mot_baav_schema,
        "airca": airca_baav_schema,
    }[name]()


def queries_for(name: str, db: Database, seed: int = 97,
                per_template: int = 1) -> List[Tuple[str, str]]:
    """(label, sql) pairs for a dataset's full query set."""
    if name == "tpch":
        return [(q, TPCH_QUERIES[q]) for q in query_names()]
    generator = mot_generator(seed) if name == "mot" else airca_generator(seed)
    return [
        (q.template, q.sql)
        for q in generator.generate(db, per_template=per_template)
    ]


# --------------------------------------------------------------------------
# systems
# --------------------------------------------------------------------------


def build_pair(
    db: Database,
    baav_schema,
    backend: str,
    workers: int = 8,
    storage_nodes: int = 4,
    **zidian_kwargs,
) -> Tuple[SQLOverNoSQL, ZidianSystem]:
    base = SQLOverNoSQL(backend, workers=workers, storage_nodes=storage_nodes)
    base.load(db)
    # paper fidelity: the deployed Zidian issues per-key gets like the
    # baseline, so the §9 reproductions keep batch_size=1 and measure
    # only BaaV's contribution; the orthogonal multi-get amortization
    # is benchmarked separately in test_batching.py, and the block cache
    # is pinned off (test_caching.py measures it in isolation)
    zidian_kwargs.setdefault("batch_size", 1)
    zidian_kwargs.setdefault("cache_capacity_bytes", 0)
    zidian = ZidianSystem(
        backend, workers=workers, storage_nodes=storage_nodes, **zidian_kwargs
    )
    zidian.load(db, baav_schema)
    return base, zidian


@dataclass
class QueryRun:
    label: str
    scan_free: bool
    bounded: bool
    base: ExecutionMetrics
    zidian: ExecutionMetrics

    @property
    def speedup(self) -> float:
        if self.zidian.sim_time_ms <= 0:
            return float("inf")
        return self.base.sim_time_ms / self.zidian.sim_time_ms


def run_queries(
    base: SQLOverNoSQL,
    zidian: ZidianSystem,
    queries: Sequence[Tuple[str, str]],
) -> List[QueryRun]:
    runs = []
    for label, sql in queries:
        m_base = base.execute(sql).metrics
        z_result = zidian.execute(sql)
        runs.append(
            QueryRun(
                label=label,
                scan_free=z_result.decision.is_scan_free,
                bounded=z_result.decision.is_bounded,
                base=m_base,
                zidian=z_result.metrics,
            )
        )
    return runs


def mean(values: Iterable[float]) -> float:
    values = list(values)
    return sum(values) / len(values) if values else 0.0


# --------------------------------------------------------------------------
# reporting
# --------------------------------------------------------------------------


def cache_rate(obj) -> str:
    """Render a cache hit-rate column from ``ExecutionMetrics``,
    ``CacheStats`` or a plain ratio (``"-"`` when nothing was looked up)."""
    if isinstance(obj, float):
        return f"{obj:.0%}"
    if hasattr(obj, "cache_hit_rate"):  # ExecutionMetrics
        lookups = obj.cache_hits + obj.cache_misses
        rate = obj.cache_hit_rate
    else:  # CacheStats
        lookups = obj.lookups
        rate = obj.hit_rate
    return f"{rate:.0%}" if lookups else "-"


def fmt(value: float) -> str:
    """Paper-style number formatting (1.5e3-ish for big values)."""
    if value == 0:
        return "0"
    if abs(value) >= 10_000:
        return f"{value:.1e}"
    if abs(value) >= 100:
        return f"{value:.0f}"
    if abs(value) >= 1:
        return f"{value:.1f}"
    return f"{value:.3f}"


def render_table(
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
) -> str:
    cells = [[str(h) for h in headers]] + [
        [c if isinstance(c, str) else fmt(c) for c in row] for row in rows
    ]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = [title, "=" * len(title)]
    lines.append("  ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells[1:]:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def publish(name: str, text: str) -> None:
    """Print a report and persist it under benchmarks/results/."""
    print("\n" + text + "\n")
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w") as handle:
        handle.write(text + "\n")


def metric(
    name: str,
    value: float,
    unit: str,
    higher_is_better: bool = True,
) -> Dict[str, object]:
    """One machine-readable benchmark metric (see :func:`publish_json`)."""
    return {
        "metric": name,
        "value": float(value),
        "unit": unit,
        "higher_is_better": higher_is_better,
    }


def publish_json(
    name: str,
    metrics: Sequence[Dict[str, object]],
    config: Optional[Dict[str, object]] = None,
) -> str:
    """Persist headline metrics as ``benchmarks/results/BENCH_<name>.json``.

    The JSON twin of :func:`publish`: CI uploads these as workflow
    artifacts and ``benchmarks/compare_baselines.py`` diffs them
    against the committed baselines (fail-soft warn on a >20%
    regression), so throughput/latency become tracked numbers instead
    of text nobody diffs. Each metric comes from :func:`metric`;
    ``config`` records the knobs that produced it.
    """
    os.makedirs(RESULTS_DIR, exist_ok=True)
    payload = {
        "name": name,
        "config": config or {},
        "metrics": list(metrics),
    }
    path = os.path.join(RESULTS_DIR, f"BENCH_{name}.json")
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path
