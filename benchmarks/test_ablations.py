"""Ablations (ours): isolate the design choices DESIGN.md calls out.

A1 block compression on/off; A2 block statistics fast path on/off;
A3 block split threshold sweep; A4 interleaved vs fetch-all execution of
the same KBA plan (the §7.2 strategy vs the strawman it replaces).
"""


from harness import (
    baav_schema_for,
    build_pair,
    dataset,
    fmt,
    mean,
    publish,
    queries_for,
    render_table,
    run_queries,
)

from repro.relational import bag_equal
from repro.systems import ZidianSystem

SCALE_UNITS = 8
BACKEND = "hbase"


def test_a1_compression(once):
    """Block compression (§8.2(1)) on a narrow, small-domain KV schema.

    Compression dedupes identical value rows within a block, so it pays
    on schemas whose value attributes have small active domains — the
    "many attributes of MOT ... have small active domains" observation of
    Exp-1. A wide schema containing a unique id never dedupes; this
    ablation uses a narrow test-profile schema keyed by station.
    """

    def run():
        from repro.baav import BaaVSchema, KVSchema
        from repro.workloads.mot import TEST

        db = dataset("mot", SCALE_UNITS)
        narrow = BaaVSchema([
            KVSchema("test_profile", TEST, ["station_id"],
                     ["result", "test_type", "test_class"]),
        ])
        station = sorted(db.relation("TEST").distinct_values("station_id"))[0]
        sql = (
            "select T.result, count(*) as n from TEST T "
            f"where T.station_id = {station} group by T.result"
        )
        out = {}
        for compress in (True, False):
            zidian = ZidianSystem(
                BACKEND, workers=8, storage_nodes=4, compress=compress,
                keep_taav=False, use_stats=False,
            )
            zidian.load(db, narrow)
            out[compress] = (
                zidian.store.instance("test_profile").size_bytes(),
                zidian.execute(sql),
            )
        return out

    out = once(run)
    rows = [
        [name, fmt(out[flag][0] / 1e6), fmt(out[flag][1].metrics.data_values),
         fmt(out[flag][1].metrics.sim_time_ms / 1000)]
        for name, flag in (("compressed", True), ("raw", False))
    ]
    publish(
        "ablation_a1_compression",
        render_table(
            "Ablation A1 (repro): block compression, narrow MOT schema",
            ["layout", "store (MB)", "#data", "time (s)"],
            rows,
        ),
    )
    assert bag_equal(out[True][1].relation, out[False][1].relation)
    # small active domain: big dedupe in storage and data accessed
    assert out[True][0] < out[False][0] / 3
    assert out[True][1].metrics.data_values < (
        out[False][1].metrics.data_values / 2
    )


def test_a2_block_stats(once):
    """The §8.2(2) statistics fast path on whole-instance group-bys.

    Uses TPC-H's lineitem-by-suppkey instance: blocks of hundreds of
    tuples, where four statistics per attribute replace the whole block.
    (On tiny blocks the sidecar is as big as the data and the path does
    not pay — the degree dependence is the point of the ablation.)
    """
    sql = (
        "select L.suppkey, sum(L.quantity) as q, avg(L.discount) as d "
        "from LINEITEM L group by L.suppkey"
    )

    def run():
        db = dataset("tpch", SCALE_UNITS)
        baav = baav_schema_for("tpch")
        out = {}
        for use_stats in (True, False):
            zidian = ZidianSystem(
                BACKEND, workers=8, storage_nodes=4, use_stats=use_stats
            )
            zidian.load(db, baav)
            out[use_stats] = zidian.execute(sql)
        return out

    out = once(run)
    rows = [
        [label, fmt(out[flag].metrics.data_values),
         fmt(out[flag].metrics.sim_time_ms / 1000)]
        for label, flag in (("stats", True), ("rows", False))
    ]
    publish(
        "ablation_a2_block_stats",
        render_table(
            "Ablation A2 (repro): per-block statistics fast path",
            ["path", "#data", "time (s)"],
            rows,
        ),
    )
    assert bag_equal(out[True].relation, out[False].relation)
    assert out[True].metrics.data_values < out[False].metrics.data_values / 5
    assert out[True].metrics.sim_time_ms < out[False].metrics.sim_time_ms


def test_a3_split_threshold(once):
    """Oversized-block splitting: more segments, same answers."""
    def run():
        db = dataset("tpch", 4)
        baav = baav_schema_for("tpch")
        sql = (
            "select L.orderkey, L.extendedprice from LINEITEM L, ORDERS O "
            "where L.orderkey = O.orderkey and O.custkey = 7"
        )
        out = {}
        for threshold in (10_000, 64, 8):
            zidian = ZidianSystem(
                BACKEND, workers=8, storage_nodes=4,
                split_threshold=threshold,
            )
            zidian.load(db, baav)
            out[threshold] = zidian.execute(sql)
        return out

    out = once(run)
    rows = [
        [str(t), fmt(r.metrics.n_get), fmt(r.metrics.sim_time_ms / 1000)]
        for t, r in sorted(out.items(), reverse=True)
    ]
    publish(
        "ablation_a3_split_threshold",
        render_table(
            "Ablation A3 (repro): block split threshold sweep, TPC-H",
            ["threshold (tuples)", "#get", "time (s)"],
            rows,
        ),
    )
    answers = list(out.values())
    for other in answers[1:]:
        assert bag_equal(answers[0].relation, other.relation)
    # smaller threshold -> more segments -> at least as many gets
    assert out[8].metrics.n_get >= out[10_000].metrics.n_get


def test_a4_interleaving(once):
    """Interleaved ∝ vs the fetch-all baseline on the same queries."""
    def run():
        db = dataset("mot", SCALE_UNITS)
        baav = baav_schema_for("mot")
        queries = [
            (label, sql)
            for label, sql in queries_for("mot", db)
            if label in ("q1", "q2", "q3", "q4", "q5", "q6")
        ]
        base, zidian = build_pair(db, baav, BACKEND, workers=8)
        return run_queries(base, zidian, queries)

    runs = once(run)
    rows = [
        [r.label, fmt(r.base.comm_bytes / 1e6),
         fmt(r.zidian.comm_bytes / 1e6), f"{r.speedup:.0f}x"]
        for r in runs
    ]
    publish(
        "ablation_a4_interleaving",
        render_table(
            "Ablation A4 (repro): fetch-all vs interleaved ∝ "
            "(scan-free MOT queries)",
            ["query", "fetch-all comm (MB)", "interleaved comm (MB)",
             "speedup"],
            rows,
        ),
    )
    for r in runs:
        # Proposition 7: interleaving keeps communication bounded
        assert r.zidian.comm_bytes < r.base.comm_bytes / 10, r.label


def test_a5_storage_engine(once):
    """Mem vs LSM node engines: same answers, same counters.

    The middleware is engine-agnostic (§1 [3]: "without the need to hack
    into the systems or change their underlying KV storage"): logical
    gets/values/comm are identical on both engines; only the physical
    write path differs (flushes/compactions visible in the LSM stats).
    """

    def run():
        from repro.baav import BaaVStore
        from repro.core import Zidian, substitute_table
        from repro.kba import ExecContext, execute
        from repro.kv import KVCluster
        from repro.sql.executor import Table, run as ra_run

        db = dataset("mot", 4)
        baav = baav_schema_for("mot")
        sql = queries_for("mot", db)[0][1]  # q1: bounded lookup
        out = {}
        for engine in ("mem", "lsm"):
            cluster = KVCluster(4, engine=engine)
            store = BaaVStore.map_database(db, baav, cluster)
            zidian = Zidian(db.schema, baav, store)
            plan, _ = zidian.plan(sql)
            cluster.reset_counters()
            blockset = execute(plan.root, ExecContext(store))
            table = Table(blockset.attrs, list(blockset.expand()))
            final = substitute_table(plan.ra_plan, plan.replace_node, table)
            result = ra_run(final, db)
            counters = cluster.total_counters()
            lsm_stats = None
            if engine == "lsm":
                node = next(iter(cluster.nodes.values()))
                lsm_stats = node.store.stats
            out[engine] = (result.rows, counters, lsm_stats)
        return out

    out = once(run)
    rows = [
        [engine, fmt(counters.gets), fmt(counters.values_read),
         str(len(result_rows))]
        for engine, (result_rows, counters, _) in out.items()
    ]
    publish(
        "ablation_a5_storage_engine",
        render_table(
            "Ablation A5 (repro): mem vs LSM storage engine (MOT q1)",
            ["engine", "#get", "#data", "rows"],
            rows,
        ),
    )
    mem_rows, mem_counters, _ = out["mem"]
    lsm_rows, lsm_counters, lsm_stats = out["lsm"]
    assert sorted(map(repr, mem_rows)) == sorted(map(repr, lsm_rows))
    assert mem_counters.gets == lsm_counters.gets
    assert mem_counters.values_read == lsm_counters.values_read
    # the LSM engine actually flushed during the bulk load
    assert lsm_stats is not None and lsm_stats.flushes > 0
