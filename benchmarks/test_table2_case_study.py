"""Table 2 — case study: Q1 of Example 3 on TPC-H, all six systems.

Paper row format: time (s), #data, #get, comm (MB) for SoH/SoK/SoC with
and without Zidian. Expected shape: Zidian wins on every metric for every
backend; get counts drop by orders of magnitude.
"""

from harness import (
    BACKENDS,
    baav_schema_for,
    build_pair,
    fmt,
    publish,
    render_table,
    tpch_db,
)

Q1 = """
select PS.suppkey, SUM(PS.supplycost) as total
from PARTSUPP PS, SUPPLIER S, NATION N
where PS.suppkey = S.suppkey and S.nationkey = N.nationkey
  and N.name = 'GERMANY'
group by PS.suppkey
"""

SCALE_UNITS = 16
WORKERS = 8


def run_case_study():
    db = tpch_db(SCALE_UNITS)
    baav = baav_schema_for("tpch")
    out = {}
    for backend in BACKENDS:
        base, zidian = build_pair(db, baav, backend, workers=WORKERS)
        out[backend] = (
            base.execute(Q1).metrics,
            zidian.execute(Q1),
        )
    return db, out


def test_table2_case_study(once):
    db, results = once(run_case_study)

    headers = ["metric"]
    for backend in BACKENDS:
        short = backend[0].upper()
        headers += [f"So{short}", f"So{short}Zidian"]
    rows = []
    for metric, getter in (
        ("time (s)", lambda m: m.sim_time_s),
        ("#data", lambda m: m.data_values),
        ("#get", lambda m: m.n_get),
        ("comm (MB)", lambda m: m.comm_bytes / 1e6),
    ):
        row = [metric]
        for backend in BACKENDS:
            m_base, z_result = results[backend]
            row += [fmt(getter(m_base)), fmt(getter(z_result.metrics))]
        rows.append(row)

    publish(
        "table2_case_study",
        render_table(
            f"Table 2 (repro): Q1 case study, TPC-H {SCALE_UNITS} units, "
            f"{WORKERS} workers — |D|={db.num_tuples()} tuples",
            headers,
            rows,
        ),
    )

    # shape assertions (paper: ~10x time, ~60x data, ~2e3x gets, ~28x comm)
    for backend in BACKENDS:
        m_base, z_result = results[backend]
        m_z = z_result.metrics
        assert z_result.decision.is_scan_free
        assert m_base.sim_time_ms / m_z.sim_time_ms > 2, backend
        assert m_base.data_values / max(1, m_z.data_values) > 10, backend
        assert m_base.n_get / max(1, m_z.n_get) > 100, backend
        assert m_base.comm_bytes / max(1, m_z.comm_bytes) > 5, backend
