"""Failover — throughput across a mid-run node crash (PR 3).

The experiment the paper's Exp-4 cannot run: a replicated
(``replication_factor=3``) KV cluster serves a bulk read workload, one
storage node crashes halfway through, the workload keeps running on the
degraded cluster, and the node then recovers. The harness verifies that
**no acknowledged read or write is lost** — every loaded key answers
through the whole churn — and reports the two honest bills:

* the *throughput hit*: Tpms before / during / after the outage (the
  degraded phase spreads the same storage work over one fewer node);
* the *rebalance bill*: keys/bytes moved and simulated time of the
  crash re-replication and the recovery re-sync.
"""

import random

from harness import dataset, fmt, metric, publish, publish_json, render_table

from repro.kv import KVCluster, TaaVStore, profile
from repro.parallel.costmodel import CostModel
from repro.workloads.kvload import taav_read_workload

NODES = 4
REPLICATION = 3
N_READS = 300
N_WRITES_DURING_OUTAGE = 100


def _rebalance_cost(cluster, report):
    model = CostModel(
        profile("hbase"), workers=8, storage_nodes=cluster.num_live_nodes
    )
    stage = model.rebalance_stage(
        "churn", report.keys_moved, report.bytes_moved, report.round_trips
    )
    return stage.time_ms


def run_failover():
    db = dataset("mot", 8)
    cluster = KVCluster(NODES, replication_factor=REPLICATION)
    taav = TaaVStore.from_database(db, cluster)
    relation = taav.relation("TEST")
    hbase = profile("hbase")
    rng = random.Random(37)
    n_tests = len(db["TEST"])

    def keys():
        return [(rng.randrange(1, n_tests + 1),) for _ in range(N_READS)]

    phases = {}
    events = {}

    # phase 1: healthy cluster
    phases["healthy"] = (
        taav_read_workload(relation, keys(), hbase), cluster.num_live_nodes
    )

    # mid-run crash: one replica of every range disappears
    cluster.fail_node(0)
    events["crash re-replication"] = (
        cluster.last_rebalance, _rebalance_cost(cluster, cluster.last_rebalance)
    )

    # phase 2: degraded cluster — same workload, one fewer node, and
    # NOT ONE read misses (the failover guarantee under R=3)
    degraded_keys = keys()
    for key in degraded_keys:
        assert relation.get(key) is not None, f"lost read for {key}"
    phases["degraded"] = (
        taav_read_workload(relation, degraded_keys, hbase),
        cluster.num_live_nodes,
    )

    # writes during the outage must survive recovery
    written = [
        (90_000_000 + i, rng.randrange(1, 200), "2011-01-01", 4, "NORMAL",
         "PASS", 60_000, 3, 1600, 150.0, 0, 0, False, 45, 54.85, 7)
        for i in range(N_WRITES_DURING_OUTAGE)
    ]
    for row in written:
        relation.insert(row)

    cluster.recover_node(0)
    events["recovery re-sync"] = (
        cluster.last_rebalance, _rebalance_cost(cluster, cluster.last_rebalance)
    )

    # phase 3: recovered cluster
    phases["recovered"] = (
        taav_read_workload(relation, keys(), hbase), cluster.num_live_nodes
    )
    for row in written:
        assert relation.get((row[0],)) is not None, "lost write"
    return phases, events


def test_failover_throughput(once):
    phases, events = once(run_failover)
    healthy = phases["healthy"][0].tpms
    degraded = phases["degraded"][0].tpms
    recovered = phases["recovered"][0].tpms
    rows = [
        [name, str(nodes), fmt(result.tpms),
         f"{result.tpms / healthy:.2f}x"]
        for name, (result, nodes) in phases.items()
    ]
    publish(
        "failover_throughput",
        render_table(
            f"Failover (repro): read Tpms across a mid-run node crash, "
            f"MOT, R={REPLICATION}",
            ["phase", "live nodes", "Tpms", "vs healthy"],
            rows,
        ),
    )
    event_rows = [
        [name, str(report.keys_moved), f"{report.bytes_moved / 1e6:.3f}",
         str(report.round_trips), fmt(time_ms)]
        for name, (report, time_ms) in events.items()
    ]
    publish(
        "failover_rebalance",
        render_table(
            "Failover (repro): what the churn moved",
            ["event", "keys moved", "MB moved", "transfers", "sim ms"],
            event_rows,
        ),
    )
    publish_json(
        "failover",
        [
            metric("healthy_tpms", healthy, "values/ms"),
            metric("degraded_tpms", degraded, "values/ms"),
            metric("recovered_tpms", recovered, "values/ms"),
            metric(
                "degraded_retention",
                degraded / healthy,
                "ratio",
            ),
        ],
        config={"nodes": NODES, "replication": REPLICATION},
    )
    # the degraded phase pays for the lost node, but keeps serving:
    # 3 of 4 nodes ≈ 3/4 the throughput, never a collapse
    assert degraded < healthy
    assert degraded > healthy * 0.5
    # recovery restores the healthy rate
    assert recovered > degraded
    assert abs(recovered - healthy) / healthy < 0.25
    # the crash actually moved data (failover is not free)
    crash_report = events["crash re-replication"][0]
    assert crash_report.keys_moved > 0
    assert crash_report.bytes_moved > 0


# --------------------------------------------------------------------------
# kill-and-restart (PR 8): the crash the partition scenario above can't model
# --------------------------------------------------------------------------


def run_kill_restart(replication: int):
    """Whole-cluster SIGKILL + restart on a durable cluster: every node
    loses its process at once, so recovery cannot re-replicate from a
    surviving peer — the acked writes must come back from each node's
    WAL + checkpoint state."""
    import tempfile
    import time

    import shutil

    data_dir = tempfile.mkdtemp(prefix="repro-bench-failover-")
    oracle = {}
    try:
        with KVCluster(
            NODES, replication_factor=replication, data_dir=data_dir
        ) as cluster:
            for i in range(N_WRITES_DURING_OUTAGE):
                key = b"kr%06d" % i
                value = b"v%d" % i
                cluster.put("kill", key, value)
                oracle[key] = value
            for node in cluster.nodes.values():
                node.crash()

        start = time.perf_counter()
        with KVCluster(
            NODES, replication_factor=replication, data_dir=data_dir
        ) as reborn:
            restart_s = time.perf_counter() - start
            replayed = sum(
                node.last_recovery.checkpoint_pairs
                + node.last_recovery.records_replayed
                for node in reborn.nodes.values()
            )
            for key, value in oracle.items():
                assert reborn.get("kill", key) == value, "lost acked write"
        return restart_s, replayed
    finally:
        shutil.rmtree(data_dir, ignore_errors=True)


def test_kill_restart(once):
    def run_both():
        return {r: run_kill_restart(r) for r in (1, 2)}

    results = once(run_both)
    publish(
        "failover_kill_restart",
        render_table(
            f"Kill-and-restart (repro): whole-cluster SIGKILL, "
            f"{NODES} durable nodes",
            ["R", "restart wall s", "records replayed"],
            [
                [str(r), f"{secs:.3f}", str(replayed)]
                for r, (secs, replayed) in results.items()
            ],
        ),
    )
    for r, (secs, replayed) in results.items():
        # every node recovered something, and nothing was re-loaded:
        # the replayed volume covers the acked writes R times over
        assert replayed >= N_WRITES_DURING_OUTAGE * r
        assert secs < 60
