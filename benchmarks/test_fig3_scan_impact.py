"""Figure 3 — impact of scans: single worker, growing datasets (Exp-2).

Four panels: MOT scan-free (3a), MOT non-scan-free (3b), TPC-H scan-free
(3c), TPC-H non-scan-free (3d). Expected shapes:

* scan-free & bounded (MOT q1–q6): Zidian time *flat* as |D| grows, while
  the baseline grows linearly;
* scan-free unbounded (TPC-H): Zidian grows but stays well below;
* non-scan-free: both grow; Zidian still wins via block locality and
  scan-free sub-queries.
"""


from harness import (
    baav_schema_for,
    build_pair,
    dataset,
    fmt,
    mean,
    publish,
    queries_for,
    render_table,
    run_queries,
)

GRID = (1, 2, 4, 8)
WORKERS = 1

TPCH_SF_SUBSET = ("q3", "q11", "q17")
TPCH_NSF_SUBSET = ("q1", "q6", "q13")


def run_panel(name: str, scan_free: bool):
    """One panel: (units -> (baseline avg ms, zidian avg ms))."""
    baav = baav_schema_for(name)
    series = {}
    for units in GRID:
        db = dataset(name, units)
        queries = queries_for(name, db)
        if name == "tpch":
            subset = TPCH_SF_SUBSET if scan_free else TPCH_NSF_SUBSET
            queries = [(l, s) for l, s in queries if l in subset]
        base, zidian = build_pair(
            db, baav, "hbase", workers=WORKERS, storage_nodes=4
        )
        runs = run_queries(base, zidian, queries)
        runs = [r for r in runs if r.scan_free == scan_free]
        series[units] = (
            mean(r.base.sim_time_ms for r in runs),
            mean(r.zidian.sim_time_ms for r in runs),
            all(r.bounded for r in runs) if runs else False,
        )
    return series


def publish_panel(panel_id: str, title: str, series):
    rows = [
        [f"{units}", fmt(base / 1000), fmt(z / 1000)]
        for units, (base, z, _) in sorted(series.items())
    ]
    publish(
        f"fig3{panel_id}",
        render_table(
            f"Figure 3{panel_id} (repro): {title} — 1 worker",
            ["scale units", "SoH time (s)", "SoHZidian time (s)"],
            rows,
        ),
    )


def growth(series, which: int) -> float:
    lo = series[GRID[0]][which]
    hi = series[GRID[-1]][which]
    return hi / max(lo, 1e-9)


def test_fig3a_mot_scan_free(once):
    series = once(run_panel, "mot", True)
    publish_panel("a", "MOT scan-free (bounded) queries", series)
    assert all(bounded for _, _, bounded in series.values())
    # baseline grows ~linearly with |D|; bounded Zidian stays flat
    assert growth(series, 0) > 3.0
    assert growth(series, 1) < 1.8
    assert all(z < b for b, z, _ in series.values())


def test_fig3b_mot_non_scan_free(once):
    series = once(run_panel, "mot", False)
    publish_panel("b", "MOT non-scan-free queries", series)
    # both grow, Zidian still faster
    assert growth(series, 0) > 3.0
    assert growth(series, 1) > 1.5
    assert all(z < b for b, z, _ in series.values())


def test_fig3c_tpch_scan_free(once):
    series = once(run_panel, "tpch", True)
    publish_panel("c", "TPC-H scan-free (unbounded) queries", series)
    assert all(z < b for b, z, _ in series.values())
    # unbounded: Zidian grows with |D| (unlike MOT's bounded queries)
    assert growth(series, 1) > 1.5


def test_fig3d_tpch_non_scan_free(once):
    series = once(run_panel, "tpch", False)
    publish_panel("d", "TPC-H non-scan-free queries", series)
    assert all(z < b for b, z, _ in series.values())
    assert growth(series, 0) > 3.0
