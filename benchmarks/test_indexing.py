"""Secondary indexes: scan-free plans for selective non-key predicates.

The paper's scan-free machinery needs a predicate to bind a relation
*key*; every other selective filter degenerates to a full fetch-all
scan. This benchmark measures the new index subsystem closing exactly
that gap, three ways:

* **AIR-CA selective filters** — Zipf-skewed equality on
  ``FLIGHT.tail_id`` (≤1% selectivity) and narrow ranges on
  ``FLIGHT.dep_delay``, scan vs index probe on the conventional stack;
* **MOT (kvload-style) filters** — the same comparison on the MOT TEST
  relation (equality on ``vehicle_id`` ~0.1% selectivity, ranges on
  ``odometer``);
* **Zidian ScanKV vs IndexProbe** — a filter on an attribute only a
  wide KV instance covers: the planner swaps the instance scan for an
  index probe + multi_get.

Plus the honest bill: a **maintenance table** showing the write
amplification indexes add to every update batch.
"""

from harness import (
    BACKENDS,
    baav_schema_for,
    dataset,
    fmt,
    metric,
    publish,
    publish_json,
    render_table,
)

from repro.systems import SQLOverNoSQL, ZidianSystem
from repro.workloads.airca import generate_airca
from repro.workloads.generator import selective_workload

SCALE_UNITS = 3
N_QUERIES = 8
EQ_TARGET = 3.0      # acceptance: ≥3x on ≤1%-selectivity equality
RANGE_TARGET = 2.0   # acceptance: ≥2x on narrow range filters


def run_selective(name, relation, eq_attr, range_attr, range_width):
    db = dataset(name, SCALE_UNITS)
    queries = selective_workload(
        db,
        relation,
        eq_attr,
        range_attr,
        n_queries=N_QUERIES,
        seed=101,
        range_width=range_width,
    )
    specs = [f"{relation}.{eq_attr}", f"{relation}.{range_attr}:ordered"]
    results = {}
    for backend in BACKENDS:
        plain = SQLOverNoSQL(backend)
        plain.load(db)
        indexed = SQLOverNoSQL(backend, indexes=specs)
        indexed.load(db)
        sums = {"sel_eq": [0.0, 0.0], "sel_range": [0.0, 0.0]}
        probes = postings = 0
        selectivity = {"sel_eq": [], "sel_range": []}
        for query in queries:
            a = plain.execute(query.sql)
            b = indexed.execute(query.sql)
            assert sorted(a.rows) == sorted(b.rows), query.sql
            assert "index probe" in b.plan_summary, query.sql
            sums[query.template][0] += a.metrics.sim_time_ms
            sums[query.template][1] += b.metrics.sim_time_ms
            probes += b.metrics.index_probes
            postings += b.metrics.index_postings
            selectivity[query.template].append(
                len(a.rows) / max(1, len(db.relation(relation)))
            )
        results[backend] = (sums, probes, postings, selectivity)
    return results


def _selective_report(title, slug, results, relation_note):
    rows = []
    eq_speedups, range_speedups = [], []
    for backend, (sums, probes, postings, selectivity) in results.items():
        eq_scan, eq_idx = sums["sel_eq"]
        rg_scan, rg_idx = sums["sel_range"]
        eq_speedups.append(eq_scan / eq_idx)
        range_speedups.append(rg_scan / rg_idx)
        rows.append(
            [
                backend,
                fmt(eq_scan),
                fmt(eq_idx),
                f"{eq_scan / eq_idx:.2f}x",
                fmt(rg_scan),
                fmt(rg_idx),
                f"{rg_scan / rg_idx:.2f}x",
                str(probes),
                str(postings),
            ]
        )
    any_sel = next(iter(results.values()))[3]
    note = (
        f"{relation_note}; mean selectivity eq="
        f"{100 * sum(any_sel['sel_eq']) / len(any_sel['sel_eq']):.2f}% "
        f"range="
        f"{100 * sum(any_sel['sel_range']) / len(any_sel['sel_range']):.2f}%"
    )
    publish(
        slug,
        render_table(
            f"{title}\n{note}",
            [
                "backend",
                "eq scan ms",
                "eq idx ms",
                "eq speedup",
                "rng scan ms",
                "rng idx ms",
                "rng speedup",
                "probes",
                "postings",
            ],
            rows,
        ),
    )
    return eq_speedups, range_speedups


def test_airca_selective_filters(once):
    results = once(
        run_selective, "airca", "FLIGHT", "tail_id", "dep_delay", 0.02
    )
    eq_speedups, range_speedups = _selective_report(
        "Secondary indexes: AIR-CA selective non-key filters "
        "(scan vs index probe)",
        "indexing_selective_airca",
        results,
        "FLIGHT, hash(tail_id) + ordered(dep_delay)",
    )
    publish_json(
        "indexing_airca",
        [
            metric("min_eq_speedup", min(eq_speedups), "x"),
            metric("min_range_speedup", min(range_speedups), "x"),
        ],
        config={"relation": "FLIGHT", "selectivity": 0.02},
    )
    assert min(eq_speedups) >= EQ_TARGET, eq_speedups
    assert min(range_speedups) >= RANGE_TARGET, range_speedups


def test_mot_selective_filters(once):
    results = once(
        run_selective, "mot", "TEST", "vehicle_id", "odometer", 0.01
    )
    eq_speedups, range_speedups = _selective_report(
        "Secondary indexes: MOT kvload-style selective filters "
        "(scan vs index probe)",
        "indexing_selective_mot",
        results,
        "TEST, hash(vehicle_id) + ordered(odometer)",
    )
    assert min(eq_speedups) >= EQ_TARGET, eq_speedups
    assert min(range_speedups) >= RANGE_TARGET, range_speedups


# --------------------------------------------------------------------------
# Zidian: index probe replacing a wide ScanKV
# --------------------------------------------------------------------------


ZIDIAN_SQL = (
    "select CS.stat_id, CS.flights from CSTAT CS "
    "where CS.metric_01 > 97.0"
)


def run_zidian_scan_vs_probe():
    db = dataset("airca", SCALE_UNITS)
    baav = baav_schema_for("airca")
    results = {}
    for backend in BACKENDS:
        plain = ZidianSystem(backend, batch_size=1)
        plain.load(db, baav)
        indexed = ZidianSystem(
            backend, batch_size=1, indexes=["CSTAT.metric_01:ordered"]
        )
        indexed.load(db, baav)
        a = plain.execute(ZIDIAN_SQL)
        b = indexed.execute(ZIDIAN_SQL)
        assert sorted(a.rows) == sorted(b.rows)
        assert not a.decision.is_scan_free
        assert b.decision.is_scan_free
        assert "index probe" in b.plan_summary
        results[backend] = (a.metrics, b.metrics)
    return results


def test_zidian_index_probe_over_scan_kv(once):
    results = once(run_zidian_scan_vs_probe)
    rows = []
    speedups = []
    for backend, (scan, idx) in results.items():
        speedups.append(scan.sim_time_ms / idx.sim_time_ms)
        rows.append(
            [
                backend,
                fmt(scan.sim_time_ms),
                str(scan.n_get),
                fmt(idx.sim_time_ms),
                str(idx.n_get),
                f"{scan.sim_time_ms / idx.sim_time_ms:.2f}x",
            ]
        )
    publish(
        "indexing_zidian_scan_vs_probe",
        render_table(
            "Zidian: wide ScanKV (cstat_by_id) vs IndexProbe "
            "(ordered on CSTAT.metric_01, ~1% selectivity)",
            [
                "backend",
                "scan ms",
                "scan #get",
                "probe ms",
                "probe #get",
                "speedup",
            ],
            rows,
        ),
    )
    publish_json(
        "indexing_zidian_probe",
        [metric("min_probe_speedup", min(speedups), "x")],
        config={"relation": "CSTAT", "attr": "metric_01"},
    )
    assert min(speedups) >= RANGE_TARGET, speedups


# --------------------------------------------------------------------------
# maintenance: what write-through indexing costs per update batch
# --------------------------------------------------------------------------


N_UPDATE_INSERTS = 150
N_UPDATE_DELETES = 75


def run_maintenance():
    """Identical FLIGHT update batches with and without indexes."""
    systems = {}
    for label, specs in (
        ("no index", []),
        ("hash(tail_id)", ["FLIGHT.tail_id"]),
        (
            "hash+ordered",
            ["FLIGHT.tail_id", "FLIGHT.dep_delay:ordered"],
        ),
    ):
        # private database copies: apply_updates mutates them in place
        system = SQLOverNoSQL("hbase", indexes=specs)
        system.load(generate_airca(scale=1.5 * SCALE_UNITS, seed=31))
        systems[label] = system

    template = next(iter(systems.values())).database.relation("FLIGHT")
    inserts = [
        (1_000_000 + i,) + row[1:]
        for i, row in enumerate(template.rows[:N_UPDATE_INSERTS])
    ]
    deletes = list(template.rows[:N_UPDATE_DELETES])

    out = {}
    for label, system in systems.items():
        system.cluster.reset_counters()
        idx_puts = system.indexes.stats.maintenance_puts
        idx_bytes = system.indexes.stats.maintenance_bytes
        system.apply_updates("FLIGHT", inserts=inserts, deletes=deletes)
        counters = system.cluster.total_counters()
        out[label] = (
            counters.puts,
            counters.bytes_in,
            system.indexes.stats.maintenance_puts - idx_puts,
            system.indexes.stats.maintenance_bytes - idx_bytes,
        )
    return out


def test_index_maintenance_overhead(once):
    out = once(run_maintenance)
    base_puts, base_bytes, _, _ = out["no index"]
    rows = []
    for label, (puts, bytes_in, idx_puts, idx_bytes) in out.items():
        rows.append(
            [
                label,
                str(puts),
                fmt(bytes_in),
                str(idx_puts),
                fmt(idx_bytes),
                f"{puts / base_puts:.2f}x",
                f"{bytes_in / base_bytes:.2f}x",
            ]
        )
    publish(
        "indexing_maintenance",
        render_table(
            f"Index write amplification: {N_UPDATE_INSERTS} inserts + "
            f"{N_UPDATE_DELETES} deletes on FLIGHT",
            [
                "indexes",
                "puts",
                "bytes in",
                "idx puts",
                "idx bytes",
                "put amp",
                "byte amp",
            ],
            rows,
        ),
    )
    # write-through is not free, but bounded: every index adds O(|Δ|)
    # puts, far from doubling the base-table byte volume
    for label, (puts, bytes_in, idx_puts, idx_bytes) in out.items():
        if label != "no index":
            assert puts > base_puts, label
            assert idx_puts > 0, label
    worst = max(values[1] / base_bytes for values in out.values())
    assert worst < 2.0, out
