"""Concurrent query service — read scaling and mixed-load p99 (PR 5).

Two artifacts the single-client reproduction could not produce:

* **read scaling**: a closed loop of clients issuing the Zipf point-read
  mix against the service at 1 / 2 / 4 pool workers. Queries are really
  executed; time is the calibrated simulated clock (like every other
  benchmark here), so throughput measures the architecture, not the
  GIL. Headline: >= 3x at 4 workers vs 1.
* **mixed load at R=2**: point/index/range/scan classes plus a writer
  stream inserting DELAY rows on a replicated cluster. Reported: p99
  per class, shed count, and the integrity check — every write survives
  exactly once on both the relational and the KV/scan read path. The
  integrity phase drives the *live* thread pool (real concurrency);
  the latency table uses the deterministic virtual loop.

PR 9 adds the MVCC axis to the mixed phase: the same closed loop runs
once under snapshot reads (the default — the writer commits
concurrently and reader p99 stays flat) and once with ``mvcc=False``
(the retired writer-exclusive lock, where every Δ drains and stalls
the readers). ``mixed_p99_ms`` tracks the MVCC number; the exclusive
p99 is published alongside as the ablation.
"""

import collections

from harness import fmt, metric, publish, publish_json, render_table

from repro.service import QueryService
from repro.systems import ZidianSystem
from repro.workloads.airca import airca_baav_schema, generate_airca
from repro.workloads.traffic import (
    TrafficDriver,
    airca_delay_writer,
    airca_traffic_mix,
)

SCALE = 0.6
CLIENTS = 16
THINK_MS = 0.2
QUERIES_PER_CLIENT = 12
POOL_SIZES = (1, 2, 4)
REPLICATION = 2


def build_system(replication_factor=1):
    db = generate_airca(scale=SCALE, seed=31)
    system = ZidianSystem(
        workers=2,
        storage_nodes=4,
        replication_factor=replication_factor,
        indexes=["FLIGHT.tail_id", "FLIGHT.arr_delay:ordered"],
    )
    system.load(db, airca_baav_schema())
    return db, system


def run_read_scaling():
    db, system = build_system()
    mix = airca_traffic_mix(db, point=1.0, index=0.0, range_=0.0, scan=0.0)
    reports = {}
    for workers in POOL_SIZES:
        with QueryService(
            system, max_workers=workers, max_queued=2 * CLIENTS
        ) as service:
            driver = TrafficDriver(
                service, mix, clients=CLIENTS, think_ms=THINK_MS, seed=5
            )
            reports[workers] = driver.run(
                queries_per_client=QUERIES_PER_CLIENT
            )
    return reports


#: the mixed phase runs at moderate reader load (utilization ~0.6, so
#: queueing does not drown the writer signal) under a *sustained*
#: writer: 150 Δs at 0.2 ms think span the whole closed loop
MIXED_CLIENTS = 6
MIXED_THINK_MS = 20.0
MIXED_UPDATES = 150
MIXED_WRITER_THINK_MS = 0.2


def run_mixed_load(mvcc=True):
    db, system = build_system(replication_factor=REPLICATION)
    mix = airca_traffic_mix(db)
    writer, _ = airca_delay_writer(db, think_ms=MIXED_WRITER_THINK_MS)
    with QueryService(
        system, max_workers=4, max_queued=8, mvcc=mvcc
    ) as service:
        driver = TrafficDriver(
            service,
            mix,
            clients=MIXED_CLIENTS,
            think_ms=MIXED_THINK_MS,
            update_stream=writer,
            seed=7,
        )
        report = driver.run(queries_per_client=8, updates=MIXED_UPDATES)
    return db, report


def run_mixed_integrity():
    """Real threads on the live pool: exactly-once writes at R=2."""
    db, system = build_system(replication_factor=REPLICATION)
    before_ids = [row[0] for row in db.relation("DELAY").rows]
    writer, inserted = airca_delay_writer(db, think_ms=0.0)
    with QueryService(system, max_workers=4, max_queued=4) as service:
        driver = TrafficDriver(
            service,
            airca_traffic_mix(db),
            clients=6,
            think_ms=0.0,
            update_stream=writer,
            seed=13,
        )
        report = driver.run_threads(queries_per_client=5, updates=15)
        with service.open_session() as session:
            kv_count = session.execute(
                "select count(*) as n from DELAY D"
            ).rows[0][0]
        stats = service.stats()
    ids = [row[0] for row in db.relation("DELAY").rows]
    duplicated = [k for k, n in collections.Counter(ids).items() if n > 1]
    lost = sorted(set(inserted) - set(ids))
    assert duplicated == [], f"duplicated writes: {duplicated}"
    assert lost == [], f"lost writes: {lost}"
    assert len(ids) == len(before_ids) + 15
    assert kv_count == len(ids), "scan path disagrees with the relation"
    assert stats.failed == 0
    return report, stats


def test_concurrency_scaling_and_mixed_load(once):
    def run_all():
        return (
            run_read_scaling(),
            run_mixed_load(mvcc=True),
            run_mixed_load(mvcc=False),
            run_mixed_integrity(),
        )

    scaling, (db, mixed), (_, exclusive), (integrity, svc_stats) = once(
        run_all
    )

    base_qps = scaling[POOL_SIZES[0]].throughput_qps
    rows = []
    for workers in POOL_SIZES:
        report = scaling[workers]
        rows.append(
            [
                workers,
                report.completed,
                report.throughput_qps,
                report.p50_ms,
                report.p95_ms,
                report.p99_ms,
                f"{report.throughput_qps / base_qps:.2f}x",
            ]
        )
    publish(
        "concurrency_read_scaling",
        render_table(
            f"Closed-loop Zipf point reads — {CLIENTS} clients, "
            f"simulated time (AIRCA, Zidian)",
            ["workers", "queries", "q/s", "p50 ms", "p95 ms",
             "p99 ms", "speedup"],
            rows,
        ),
    )

    mixed_rows = [
        [
            name,
            c.completed,
            c.shed,
            c.mean_service_ms,
            c.p50_ms,
            c.p95_ms,
            c.p99_ms,
        ]
        for name, c in sorted(mixed.per_class.items())
    ]
    mixed_rows.append(
        ["(writes)", mixed.updates_applied, 0, "-", "-", "-",
         mixed.update_p99_ms]
    )
    publish(
        "concurrency_mixed_load",
        render_table(
            f"Mixed read/write closed loop at R={REPLICATION} — "
            f"{mixed.clients} clients / {mixed.workers} workers, "
            f"{fmt(mixed.throughput_qps)} q/s, shed={mixed.shed} "
            f"(MVCC snapshot reads)",
            ["class", "done", "shed", "svc ms", "p50 ms", "p95 ms",
             "p99 ms"],
            mixed_rows,
        )
        + "\n\nwriter-exclusive ablation (mvcc=False): "
        + f"p99={exclusive.p99_ms:.2f}ms vs MVCC p99={mixed.p99_ms:.2f}ms "
        + f"({exclusive.p99_ms / max(mixed.p99_ms, 1e-9):.1f}x stall)"
        + "\n\nintegrity (live pool, real threads): "
        + integrity.summary()
        + f"\nservice: {svc_stats}",
    )

    speedup4 = scaling[4].throughput_qps / base_qps
    publish_json(
        "concurrency",
        [
            metric("read_throughput_1w_qps", base_qps, "queries/s"),
            metric(
                "read_throughput_4w_qps",
                scaling[4].throughput_qps,
                "queries/s",
            ),
            metric("read_scaling_4w_speedup", speedup4, "x"),
            metric(
                "read_p99_4w_ms",
                scaling[4].p99_ms,
                "ms",
                higher_is_better=False,
            ),
            metric(
                "mixed_p99_ms",
                mixed.p99_ms,
                "ms",
                higher_is_better=False,
            ),
            metric(
                "mixed_p99_exclusive_ms",
                exclusive.p99_ms,
                "ms",
                higher_is_better=False,
            ),
            metric(
                "mixed_update_p99_ms",
                mixed.update_p99_ms,
                "ms",
                higher_is_better=False,
            ),
            metric(
                "mixed_throughput_qps", mixed.throughput_qps, "queries/s"
            ),
        ],
        config={
            "scale": SCALE,
            "clients": CLIENTS,
            "think_ms": THINK_MS,
            "pool_sizes": list(POOL_SIZES),
            "replication_factor": REPLICATION,
            "mixed_clients": MIXED_CLIENTS,
            "mixed_think_ms": MIXED_THINK_MS,
            "mixed_updates": MIXED_UPDATES,
        },
    )

    # acceptance: near-linear read scaling and a bounded mixed p99
    assert speedup4 >= 3.0, f"read scaling only {speedup4:.2f}x at 4 workers"
    assert scaling[2].throughput_qps / base_qps >= 1.6
    # p99 is bounded by the admission queue: a query waits for at most
    # (queued + in-flight) service times of the slowest class
    slowest = max(
        c.mean_service_ms for c in mixed.per_class.values() if c.completed
    )
    bound = (mixed.workers + 8) / mixed.workers * slowest * 3.0
    assert mixed.p99_ms <= bound, (
        f"mixed p99 {mixed.p99_ms:.1f}ms above bound {bound:.1f}ms"
    )
    # PR 9: snapshot reads keep reader p99 flat under the sustained
    # writer — well below the retired writer-exclusive lock (1.5x on
    # this config; the exclusive stall adds roughly one drain cycle),
    # and at least 2x below the pre-MVCC tracked baseline of 58.7 ms
    assert mixed.p99_ms * 1.5 <= exclusive.p99_ms, (
        f"MVCC p99 {mixed.p99_ms:.1f}ms not 1.5x below the "
        f"exclusive-lock p99 {exclusive.p99_ms:.1f}ms"
    )
    assert mixed.p99_ms <= 29.0, (
        f"MVCC mixed p99 {mixed.p99_ms:.1f}ms above the 2x-vs-seed "
        "budget (58.7ms / 2)"
    )
    # the writer itself also stops paying the drain: commit latency is
    # its own service time, not "wait for every in-flight query"
    assert mixed.update_p99_ms * 5.0 <= exclusive.update_p99_ms, (
        f"MVCC write p99 {mixed.update_p99_ms:.2f}ms vs exclusive "
        f"{exclusive.update_p99_ms:.2f}ms"
    )
