"""Batched multi-get pipeline — round-trip amortization on Exp-4's workload.

Compares the per-key baseline (one get invocation = one RPC round trip,
the conventional SQL-over-NoSQL client) against the coalescing pipeline
(probe keys grouped per owning node, one round trip per node per batch)
on all three backend profiles. Two views:

* the raw KV read workload of Exp-4 (bulk point reads, TaaV and BaaV);
* end-to-end non-scan-free MOT queries (q7/q9/q11), per-key vs batched.

#get is identical in every pair — batching changes how invocations are
carried, not how many are needed — so any win is pure RPC amortization.
"""

import random

from harness import (
    BACKENDS,
    baav_schema_for,
    dataset,
    fmt,
    metric,
    publish,
    publish_json,
    render_table,
)

from repro.baav import BaaVStore
from repro.kv import KVCluster, TaaVStore, profile
from repro.systems import ZidianSystem
from repro.workloads import mot_generator
from repro.workloads.kvload import (
    baav_batched_read_workload,
    baav_read_workload,
    taav_batched_read_workload,
    taav_read_workload,
)
from repro.workloads.mot import mot_baav_schema

SCALE_UNITS = 8
N_READS = 400
BATCH = 64


def fresh_stores(nodes=4):
    db = dataset("mot", SCALE_UNITS)
    cluster = KVCluster(nodes)
    taav = TaaVStore.from_database(db, cluster)
    store = BaaVStore.map_database(db, mot_baav_schema(), cluster)
    return db, taav, store


def run_kv_batching():
    db, taav, store = fresh_stores()
    rng = random.Random(11)
    n_tests = len(db["TEST"])
    n_vehicles = len(db["VEHICLE"])
    # sample WITHOUT replacement: multi_get dedups repeated keys within
    # a batch, so distinct keys keep #get identical across the pair
    taav_keys = [
        (k,) for k in rng.sample(range(1, n_tests + 1),
                                 min(N_READS, n_tests))
    ]
    baav_keys = [
        (k,) for k in rng.sample(range(1, n_vehicles + 1),
                                 min(N_READS, n_vehicles))
    ]

    results = {}
    for backend in BACKENDS:
        p = profile(backend)
        results[backend] = {
            "taav": (
                taav_read_workload(taav.relation("TEST"), taav_keys, p),
                taav_batched_read_workload(
                    taav.relation("TEST"), taav_keys, p, batch_size=BATCH
                ),
            ),
            "baav": (
                baav_read_workload(
                    store.instance("test_by_vehicle"), baav_keys, p
                ),
                baav_batched_read_workload(
                    store.instance("test_by_vehicle"), baav_keys, p,
                    batch_size=BATCH,
                ),
            ),
        }
    return results


def test_kv_workload_batching(once):
    results = once(run_kv_batching)
    rows = []
    for backend in BACKENDS:
        for layout in ("taav", "baav"):
            per_key, batched = results[backend][layout]
            rows.append(
                [
                    backend,
                    layout,
                    fmt(per_key.sim_time_ms),
                    fmt(batched.sim_time_ms),
                    f"{per_key.sim_time_ms / batched.sim_time_ms:.2f}x",
                ]
            )
    publish(
        "batching_kv_workload",
        render_table(
            f"Batching (repro): Exp-4 bulk reads, per-key vs multi-get "
            f"(batch={BATCH}), MOT",
            ["backend", "layout", "per-key ms", "batched ms", "speedup"],
            rows,
        ),
    )
    # acceptance: batching beats the per-key baseline on every profile,
    # at identical logical work
    speedups = [
        results[backend][layout][0].sim_time_ms
        / results[backend][layout][1].sim_time_ms
        for backend in BACKENDS
        for layout in ("taav", "baav")
    ]
    publish_json(
        "batching_kv",
        [metric("min_batching_speedup", min(speedups), "x")],
        config={"batch": BATCH, "reads": N_READS, "dataset": "mot"},
    )
    for backend in BACKENDS:
        for layout in ("taav", "baav"):
            per_key, batched = results[backend][layout]
            assert batched.operations == per_key.operations, (backend, layout)
            assert batched.values == per_key.values, (backend, layout)
            assert batched.sim_time_ms < per_key.sim_time_ms, (
                backend, layout
            )


def run_query_batching():
    db = dataset("mot", SCALE_UNITS)
    # the non-scan-free templates: thousands of gets per query, the
    # round-trip-bound regime where coalescing matters
    queries = [
        (q.template, q.sql)
        for q in mot_generator(13).generate(db, per_template=1)
        if q.template in ("q7", "q9", "q11")
    ]
    results = {}
    for backend in BACKENDS:
        per_key_sys = ZidianSystem(backend, batch_size=1)
        per_key_sys.load(db, mot_baav_schema())
        batched_sys = ZidianSystem(backend, batch_size=BATCH)
        batched_sys.load(db, mot_baav_schema())
        per_key_ms = batched_ms = 0.0
        gets = round_trips = batched_round_trips = 0
        for _, sql in queries:
            a = per_key_sys.execute(sql).metrics
            b = batched_sys.execute(sql).metrics
            assert a.n_get == b.n_get
            per_key_ms += a.sim_time_ms
            batched_ms += b.sim_time_ms
            gets += a.n_get
            round_trips += a.n_round_trips
            batched_round_trips += b.n_round_trips
        results[backend] = (
            per_key_ms, batched_ms, gets, round_trips, batched_round_trips
        )
    return results


def test_query_batching(once):
    results = once(run_query_batching)
    rows = [
        [
            backend,
            fmt(per_key_ms),
            fmt(batched_ms),
            f"{per_key_ms / batched_ms:.2f}x",
            fmt(gets),
            fmt(rt_batched),
        ]
        for backend, (per_key_ms, batched_ms, gets, _, rt_batched)
        in results.items()
    ]
    publish(
        "batching_queries",
        render_table(
            f"Batching (repro): MOT non-scan-free queries (q7/q9/q11), "
            f"per-key vs batched (batch={BATCH})",
            ["backend", "per-key ms", "batched ms", "speedup", "#get",
             "#rt batched"],
            rows,
        ),
    )
    publish_json(
        "batching_queries",
        [
            metric(
                "min_query_batching_speedup",
                min(p / b for p, b, _, _, _ in results.values()),
                "x",
            )
        ],
        config={"batch": BATCH, "templates": ["q7", "q9", "q11"]},
    )
    for backend, (per_key_ms, batched_ms, _, rt, rt_batched) in results.items():
        assert batched_ms < per_key_ms, backend
        assert rt_batched < rt, backend
