"""Benchmark configuration.

Run with ``pytest benchmarks/ --benchmark-only``. Each benchmark executes
its harness once (``pedantic(rounds=1)``): the interesting output is the
regenerated paper table/figure (printed and saved under
``benchmarks/results/``), not micro-timings of the harness itself.
"""

import os
import sys

sys.path.insert(0, os.path.dirname(__file__))

import pytest


@pytest.fixture()
def once(benchmark):
    """Run a harness exactly once under pytest-benchmark timing."""

    def runner(func, *args, **kwargs):
        return benchmark.pedantic(
            func, args=args, kwargs=kwargs, rounds=1, iterations=1
        )

    return runner
