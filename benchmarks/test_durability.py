"""Durability — what crash safety costs and what it saves (PR 8).

Two honest bills, measured in wall-clock (the WAL does real file I/O,
so simulated time would miss the point):

* the *write bill*: puts/s across the fsync sweep — volatile baseline
  vs ``wal`` durability under ``never`` / ``group`` / ``always``. Group
  commit should sit near ``never``; ``always`` pays one barrier per
  record (the SQLite ``synchronous`` trade-off).
* the *recovery dividend*: a SIGKILLed socket node at R=2 recovering
  by WAL replay + delta catch-up ships **zero** rebalance bytes, where
  the volatile empty-respawn re-ships the node's whole key range; and
  a single-node (R=1) cluster — nothing to re-replicate from — serves
  every acked write again after a full kill-and-restart.
"""

import shutil
import tempfile
import time

from harness import fmt, metric, publish, publish_json, render_table

from repro.kv import KVCluster

NODES = 3
REPLICATION = 2
N_WRITES = 400
PAYLOAD = b"x" * 64


def _fill(cluster, n=N_WRITES):
    for i in range(n):
        cluster.put("bench", b"k%06d" % i, PAYLOAD)


def _assert_serves(cluster, n=N_WRITES):
    for i in range(n):
        assert cluster.get("bench", b"k%06d" % i) == PAYLOAD, "lost write"


def _put_rate(**kwargs) -> float:
    with KVCluster(NODES, replication_factor=REPLICATION, **kwargs) as c:
        start = time.perf_counter()
        _fill(c)
        elapsed = time.perf_counter() - start
    return N_WRITES / elapsed


def run_fsync_sweep():
    rates = {"off (volatile)": _put_rate()}
    for policy in ("never", "group", "always"):
        rates[f"wal/{policy}"] = _put_rate(
            durability="wal", fsync_policy=policy
        )
    return rates


def run_kill_recovery():
    """SIGKILL one socket node mid-cluster, recover, bill the re-sync."""

    def scenario(durable: bool):
        kwargs = {"durability": "wal"} if durable else {}
        with KVCluster(
            NODES,
            replication_factor=REPLICATION,
            transport="socket",
            **kwargs,
        ) as cluster:
            _fill(cluster)
            cluster.fail_node(1, kill=True)
            start = time.perf_counter()
            cluster.recover_node(1)
            recovery_s = time.perf_counter() - start
            report = cluster.last_rebalance
            _assert_serves(cluster)  # zero acked writes lost either way
            return report.keys_moved, report.bytes_moved, recovery_s

    return {"durable": scenario(True), "volatile": scenario(False)}


def run_single_node_restart():
    """Kill-and-restart an R=1 cluster: recovery has no replica to lean
    on — every acked write must come back from checkpoint + WAL."""
    data_dir = tempfile.mkdtemp(prefix="repro-bench-durability-")
    try:
        with KVCluster(1, data_dir=data_dir) as cluster:
            _fill(cluster)
            cluster.nodes[0].crash()
        start = time.perf_counter()
        with KVCluster(1, data_dir=data_dir) as reborn:
            restart_s = time.perf_counter() - start
            report = reborn.nodes[0].last_recovery
            _assert_serves(reborn)
        return restart_s, report
    finally:
        shutil.rmtree(data_dir, ignore_errors=True)


def test_durability(once):
    def run_all():
        return (
            run_fsync_sweep(),
            run_kill_recovery(),
            run_single_node_restart(),
        )

    rates, recovery, (restart_s, restart_report) = once(run_all)

    baseline = rates["off (volatile)"]
    publish(
        "durability_fsync_sweep",
        render_table(
            f"Durability (repro): put rate across the fsync sweep, "
            f"{NODES} nodes, R={REPLICATION}",
            ["durability", "puts/s", "vs volatile"],
            [
                [name, fmt(rate), f"{rate / baseline:.2f}x"]
                for name, rate in rates.items()
            ],
        ),
    )
    publish(
        "durability_recovery",
        render_table(
            "Durability (repro): SIGKILL recovery bill (socket, R=2)",
            ["cluster", "keys re-shipped", "bytes re-shipped", "wall s"],
            [
                [name, str(keys), str(bytes_), f"{secs:.3f}"]
                for name, (keys, bytes_, secs) in recovery.items()
            ],
        ),
    )

    durable_keys, durable_bytes, _ = recovery["durable"]
    volatile_keys, volatile_bytes, _ = recovery["volatile"]
    publish_json(
        "durability",
        [
            metric("put_rate_volatile", baseline, "puts/s"),
            metric("put_rate_wal_never", rates["wal/never"], "puts/s"),
            metric("put_rate_wal_group", rates["wal/group"], "puts/s"),
            metric("put_rate_wal_always", rates["wal/always"], "puts/s"),
            metric(
                "recovery_bytes_durable", durable_bytes, "bytes",
                higher_is_better=False,
            ),
            metric(
                "recovery_bytes_volatile", volatile_bytes, "bytes",
                higher_is_better=False,
            ),
            metric(
                "restart_replayed_records",
                restart_report.checkpoint_pairs
                + restart_report.records_replayed,
                "records",
            ),
        ],
        config={
            "nodes": NODES,
            "replication": REPLICATION,
            "writes": N_WRITES,
            "payload_bytes": len(PAYLOAD),
        },
    )

    # the PR's acceptance criterion: replay + delta catch-up ships
    # strictly fewer rebalance bytes than the empty respawn — here,
    # none at all (no writes were missed while the node was down)
    assert durable_bytes == durable_keys == 0
    assert durable_bytes < volatile_bytes
    assert volatile_keys > 0
    # the single-node restart recovered the whole write set from disk
    assert (
        restart_report.checkpoint_pairs + restart_report.records_replayed
        >= 1
    )
    assert restart_s < 60  # replaying 400 records is not a full reload
    # group commit stays within sight of the volatile rate; the sweep
    # is monotone in barrier frequency (always <= group within noise)
    assert rates["wal/always"] <= rates["wal/group"] * 1.5
