"""Read-through block cache — repeat-heavy workloads over the batched stack.

The paper's reproductions (Table 2/3, Figs 3–7) pin the cache OFF so
they measure BaaV's contribution alone; this benchmark measures the
orthogonal caching win the way real deployments see it: dashboards and
HTAP front ends re-issue the same analytical queries against hot data
(AIR-CA re-query) and point-read traffic is skewed (Zipf-ish kvload).

Both views compare **batching-alone** (the PR-1 pipeline, batch=64)
against **batching + cache** at identical batch size, so any win is pure
locality: cache hits never reach a storage node, cost zero round trips,
and shrink the multi-get batches to the cache-missing keys.
"""

import random

from harness import (
    BACKENDS,
    baav_schema_for,
    cache_rate,
    dataset,
    fmt,
    metric,
    publish,
    publish_json,
    queries_for,
    render_table,
)

from repro.baav import BaaVStore
from repro.kv import BlockCache, KVCluster, profile
from repro.relational import bag_equal
from repro.systems import ZidianSystem
from repro.workloads.kvload import baav_batched_read_workload
from repro.workloads.mot import mot_baav_schema

SCALE_UNITS = 6
BATCH = 64
PASSES = 3
CAPACITY = 64 << 20  # ample: the working set fits, hits dominate pass 2+


def run_requery():
    """AIR-CA re-query: the full query suite executed PASSES times."""
    db = dataset("airca", SCALE_UNITS)
    baav = baav_schema_for("airca")
    queries = queries_for("airca", db)
    results = {}
    for backend in BACKENDS:
        plain = ZidianSystem(backend, batch_size=BATCH)
        plain.load(db, baav)
        cached = ZidianSystem(
            backend, batch_size=BATCH, cache_capacity_bytes=CAPACITY
        )
        cached.load(db, baav)
        plain_ms = cached_ms = 0.0
        hits = lookups = 0
        for _ in range(PASSES):
            for _, sql in queries:
                a = plain.execute(sql)
                b = cached.execute(sql)
                assert bag_equal(a.relation, b.relation), sql
                plain_ms += a.metrics.sim_time_ms
                cached_ms += b.metrics.sim_time_ms
                hits += b.metrics.cache_hits
                lookups += b.metrics.cache_hits + b.metrics.cache_misses
        results[backend] = (
            plain_ms,
            cached_ms,
            hits / lookups if lookups else 0.0,
        )
    return results


def test_airca_requery_caching(once):
    results = once(run_requery)
    rows = [
        [
            backend,
            fmt(plain_ms),
            fmt(cached_ms),
            f"{plain_ms / cached_ms:.2f}x",
            cache_rate(rate),
        ]
        for backend, (plain_ms, cached_ms, rate) in results.items()
    ]
    publish(
        "caching_airca_requery",
        render_table(
            f"Block cache (repro): AIR-CA query suite x{PASSES}, "
            f"batching-alone vs batching+cache (batch={BATCH})",
            ["backend", "batched ms", "cached ms", "speedup", "hit rate"],
            rows,
        ),
    )
    speedups = {
        backend: plain_ms / cached_ms
        for backend, (plain_ms, cached_ms, _) in results.items()
    }
    # caching can only remove storage work at identical answers
    for backend, (plain_ms, cached_ms, rate) in results.items():
        assert cached_ms < plain_ms, backend
        assert rate > 0.0, backend
    publish_json(
        "caching_airca",
        [metric("max_requery_speedup", max(speedups.values()), "x")],
        config={"passes": PASSES, "batch": BATCH, "dataset": "airca"},
    )
    # acceptance: >= 1.5x over batching-alone on at least one profile
    assert max(speedups.values()) >= 1.5, speedups


def _zipfish_keys(rng, universe: int, n_reads: int):
    """Skewed sampling with replacement: weight rank^-1.5, shuffled ranks."""
    keys = list(range(1, universe + 1))
    rng.shuffle(keys)
    weights = [rank ** -1.5 for rank in range(1, universe + 1)]
    return [(k,) for k in rng.choices(keys, weights=weights, k=n_reads)]


def run_skewed_kvload():
    """Exp-4-style bulk block reads under a skewed (repeat-heavy) key mix."""
    db = dataset("mot", SCALE_UNITS)
    n_vehicles = len(db["VEHICLE"])
    keys = _zipfish_keys(random.Random(23), n_vehicles, 600)

    results = {}
    for backend in BACKENDS:
        p = profile(backend)
        outs = {}
        for mode in ("batched", "cached"):
            cluster = KVCluster(4)
            cache = BlockCache(CAPACITY) if mode == "cached" else None
            store = BaaVStore.map_database(
                db, mot_baav_schema(), cluster, cache=cache
            )
            instance = store.instance("test_by_vehicle")
            out = baav_batched_read_workload(
                instance, keys, p, batch_size=BATCH
            )
            outs[mode] = (out, cache.stats if cache else None)
        results[backend] = outs
    return results


def test_skewed_kvload_caching(once):
    results = once(run_skewed_kvload)
    rows = []
    for backend, outs in results.items():
        batched, _ = outs["batched"]
        cached, stats = outs["cached"]
        rows.append(
            [
                backend,
                fmt(batched.sim_time_ms),
                fmt(cached.sim_time_ms),
                f"{batched.sim_time_ms / cached.sim_time_ms:.2f}x",
                cache_rate(stats),
            ]
        )
    publish(
        "caching_kvload_skewed",
        render_table(
            f"Block cache (repro): skewed BaaV bulk reads (Zipf-ish, "
            f"batch={BATCH}), MOT",
            ["backend", "batched ms", "cached ms", "speedup", "hit rate"],
            rows,
        ),
    )
    speedups = []
    for backend, outs in results.items():
        batched, _ = outs["batched"]
        cached, stats = outs["cached"]
        # repeats are served locally: less storage time, hits recorded
        assert cached.sim_time_ms < batched.sim_time_ms, backend
        assert stats.hits > 0, backend
        speedups.append(batched.sim_time_ms / cached.sim_time_ms)
    publish_json(
        "caching_kvload",
        [metric("max_skewed_read_speedup", max(speedups), "x")],
        config={"batch": BATCH, "dataset": "mot"},
    )
    assert max(speedups) >= 1.5, speedups
