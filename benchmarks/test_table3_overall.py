"""Table 3 — average evaluation time on MOT / AIRCA / TPC-H, all systems.

Paper shape: Zidian improves every stack on every dataset; the real-life
(skewed) datasets improve by much larger factors than skew-free TPC-H;
SoK is the fastest baseline and SoH the slowest.
"""

from harness import (
    BACKENDS,
    baav_schema_for,
    build_pair,
    dataset,
    fmt,
    mean,
    metric,
    publish,
    publish_json,
    queries_for,
    render_table,
    run_queries,
)

SCALE_UNITS = {"mot": 16, "airca": 12, "tpch": 8}
WORKERS = 8


def run_table3():
    out = {}
    for name in ("mot", "airca", "tpch"):
        db = dataset(name, SCALE_UNITS[name])
        baav = baav_schema_for(name)
        queries = queries_for(name, db)
        per_backend = {}
        for backend in BACKENDS:
            base, zidian = build_pair(db, baav, backend, workers=WORKERS)
            per_backend[backend] = run_queries(base, zidian, queries)
        out[name] = per_backend
    return out


def test_table3_overall(once):
    results = once(run_table3)

    headers = ["dataset"]
    for backend in BACKENDS:
        short = backend[0].upper()
        headers += [f"So{short}", f"So{short}Zidian", "speedup"]
    rows = []
    for name in ("mot", "airca", "tpch"):
        row = [name.upper()]
        for backend in BACKENDS:
            runs = results[name][backend]
            base_t = mean(r.base.sim_time_s for r in runs)
            z_t = mean(r.zidian.sim_time_s for r in runs)
            row += [fmt(base_t), fmt(z_t), f"{base_t / z_t:.0f}x"]
        rows.append(row)

    publish(
        "table3_overall",
        render_table(
            "Table 3 (repro): average time (simulated s), "
            f"{WORKERS} workers",
            headers,
            rows,
        ),
    )

    headline = []
    for name in ("mot", "airca", "tpch"):
        per_dataset = []
        for backend in BACKENDS:
            runs = results[name][backend]
            per_dataset.append(
                mean(r.base.sim_time_ms for r in runs)
                / mean(r.zidian.sim_time_ms for r in runs)
            )
        headline.append(
            metric(f"{name}_mean_speedup", mean(per_dataset), "x")
        )
    publish_json(
        "table3", headline, config={"workers": WORKERS, "units": SCALE_UNITS}
    )

    for name in ("mot", "airca", "tpch"):
        for backend in BACKENDS:
            runs = results[name][backend]
            base_t = mean(r.base.sim_time_ms for r in runs)
            z_t = mean(r.zidian.sim_time_ms for r in runs)
            assert z_t < base_t, (name, backend)

    # the paper reports the mean of per-query speedup *ratios*; for
    # scan-free queries the skewed real-life datasets beat TPC-H
    # (the paper's Observation in Exp-1)
    def ratio_speedup(name, backend, scan_free):
        runs = [
            r for r in results[name][backend] if r.scan_free == scan_free
        ]
        return mean(r.speedup for r in runs)

    for backend in BACKENDS:
        assert ratio_speedup("mot", backend, True) > ratio_speedup(
            "tpch", backend, True
        ), backend
        assert ratio_speedup("mot", backend, False) > 1.0, backend

    # baseline ordering on scan-bound TPC-H: SoK < SoC < SoH
    tpch = results["tpch"]
    base_time = {
        b: mean(r.base.sim_time_ms for r in tpch[b]) for b in BACKENDS
    }
    assert base_time["kudu"] < base_time["cassandra"] < base_time["hbase"]
