"""Exp-4 — KV workload throughput and horizontal scalability.

Throughput is Tpms (values processed per ms across all workers). Paper
shape: BaaV improves *read* throughput (a get returns a block), write
throughput is lower but comparable (read-modify-write), and both layouts
scale near-linearly when storage nodes are added.

PR 3 adds the replicated variant: with ``replication_factor=R`` writes
fan out R-way (honest write-throughput drop) while reads spread over the
replicas, and every scale-out event reports its true migration bill —
rebalance keys/bytes moved and the simulated milliseconds they cost.
"""

import random


from harness import dataset, fmt, metric, publish, publish_json, render_table

from repro.kv import KVCluster, TaaVStore, profile
from repro.parallel.costmodel import CostModel

from repro.baav import BaaVStore
from repro.workloads.kvload import (
    baav_read_workload,
    baav_write_workload,
    taav_read_workload,
    taav_write_workload,
)
from repro.baav import BaaVSchema
from repro.workloads.mot import TEST, mot_baav_schema

SCALE_UNITS = 8
N_READS = 400
N_WRITES = 200


def fresh_stores(nodes=4):
    db = dataset("mot", SCALE_UNITS)
    cluster = KVCluster(nodes)
    taav = TaaVStore.from_database(db, cluster)
    store = BaaVStore.map_database(db, mot_baav_schema(), cluster)
    return db, taav, store


def new_test_rows(n, base=50_000_000):
    rng = random.Random(5)
    return [
        (base + i, rng.randrange(1, 200), "2010-06-01", 4, "NORMAL",
         "PASS", 50_000, 3, 1600, 150.0, 0, 0, False, 45, 54.85, 7)
        for i in range(n)
    ]


def run_throughput():
    db, taav, store = fresh_stores()
    rng = random.Random(3)
    n_tests = len(db["TEST"])
    hbase = profile("hbase")

    read_keys_taav = [(rng.randrange(1, n_tests + 1),) for _ in range(N_READS)]
    n_vehicles = len(db["VEHICLE"])
    read_keys_baav = [
        (rng.randrange(1, n_vehicles + 1),) for _ in range(N_READS)
    ]

    taav_read = taav_read_workload(
        taav.relation("TEST"), read_keys_taav, hbase
    )
    baav_read = baav_read_workload(
        store.instance("test_by_vehicle"), read_keys_baav, hbase
    )
    taav_write = taav_write_workload(
        taav.relation("TEST"), new_test_rows(N_WRITES), hbase
    )
    # layout-vs-layout comparison, as in the paper: one KV instance of
    # TEST under BaaV vs the TaaV layout (not the whole secondary set)
    single = BaaVSchema([
        s for s in mot_baav_schema() if s.name == "test_by_vehicle"
    ])
    write_store = BaaVStore.map_database(db, single, KVCluster(4))
    baav_write = baav_write_workload(
        write_store, "TEST", new_test_rows(N_WRITES, base=60_000_000), hbase
    )
    return taav_read, baav_read, taav_write, baav_write


def test_throughput(once):
    taav_read, baav_read, taav_write, baav_write = once(run_throughput)

    rows = [
        ["read", fmt(taav_read.tpms), fmt(baav_read.tpms),
         f"{baav_read.tpms / taav_read.tpms:.2f}x"],
        ["write", fmt(taav_write.tpms), fmt(baav_write.tpms),
         f"{baav_write.tpms / taav_write.tpms:.2f}x"],
    ]
    publish(
        "exp4_throughput",
        render_table(
            "Exp-4 (repro): KV workload throughput, Tpms "
            "(values / simulated ms), MOT",
            ["workload", "TaaV", "BaaV", "BaaV/TaaV"],
            rows,
        ),
    )

    publish_json(
        "exp4_throughput",
        [
            metric(
                "baav_read_gain", baav_read.tpms / taav_read.tpms, "x"
            ),
            metric(
                "baav_write_retention",
                baav_write.tpms / taav_write.tpms,
                "ratio",
            ),
        ],
        config={"dataset": "mot", "reads": N_READS, "writes": N_WRITES},
    )
    # paper: reads improve (1.1-1.5x); writes drop but stay comparable
    assert baav_read.tpms > taav_read.tpms
    assert baav_write.tpms < taav_write.tpms
    assert baav_write.tpms > taav_write.tpms / 10


def run_replicated():
    """Read/write Tpms and scale-out rebalance cost at R ∈ {1, 2, 3}."""
    db = dataset("mot", SCALE_UNITS)
    hbase = profile("hbase")
    rng = random.Random(13)
    n_tests = len(db["TEST"])
    keys = [(rng.randrange(1, n_tests + 1),) for _ in range(N_READS)]
    series = {}
    for factor in (1, 2, 3):
        cluster = KVCluster(4, replication_factor=factor)
        taav = TaaVStore.from_database(db, cluster)
        read = taav_read_workload(taav.relation("TEST"), keys, hbase)
        write = taav_write_workload(
            taav.relation("TEST"), new_test_rows(N_WRITES), hbase
        )
        cluster.reset_counters()
        cluster.add_node()
        report = cluster.last_rebalance
        model = CostModel(hbase, workers=8,
                          storage_nodes=cluster.num_live_nodes)
        stage = model.rebalance_stage(
            "scale-out", report.keys_moved, report.bytes_moved,
            report.round_trips,
        )
        series[factor] = (read.tpms, write.tpms, report, stage.time_ms)
    return series


def test_replicated_throughput_and_rebalance(once):
    series = once(run_replicated)
    rows = [
        [
            str(factor), fmt(read_tpms), fmt(write_tpms),
            str(report.keys_moved), f"{report.bytes_moved / 1e6:.3f}",
            str(report.round_trips), fmt(time_ms),
        ]
        for factor, (read_tpms, write_tpms, report, time_ms)
        in sorted(series.items())
    ]
    publish(
        "exp4_replicated",
        render_table(
            "Exp-4 (repro): replicated KV cluster — TaaV Tpms and the "
            "add-node rebalance bill, MOT",
            ["R", "read Tpms", "write Tpms", "moved keys", "moved MB",
             "transfers", "rebalance ms"],
            rows,
        ),
    )
    # write fan-out: R replicas cost ~R× the puts, so Tpms drops with R
    assert series[1][1] > series[2][1] > series[3][1]
    assert series[3][1] > series[1][1] / 5
    # reads are served by exactly one replica regardless of R
    assert series[3][0] > series[1][0] * 0.5
    # migration honesty: more replicas → more data to move on scale-out
    assert series[3][2].bytes_moved > series[1][2].bytes_moved
    for _, (_, _, report, time_ms) in series.items():
        assert report.keys_moved > 0
        assert time_ms > 0


def run_horizontal():
    series = {}
    hbase = profile("hbase")
    for nodes in (4, 8, 12):
        db, taav, store = fresh_stores(nodes)
        rng = random.Random(7)
        n_tests = len(db["TEST"])
        keys = [(rng.randrange(1, n_tests + 1),) for _ in range(N_READS)]
        taav_tpms = taav_read_workload(
            taav.relation("TEST"), keys, hbase
        ).tpms
        n_vehicles = len(db["VEHICLE"])
        vkeys = [(rng.randrange(1, n_vehicles + 1),) for _ in range(N_READS)]
        baav_tpms = baav_read_workload(
            store.instance("test_by_vehicle"), vkeys, hbase
        ).tpms
        series[nodes] = (taav_tpms, baav_tpms)
    return series


def test_horizontal_scalability(once):
    series = once(run_horizontal)
    rows = [
        [str(nodes), fmt(v[0]), fmt(v[1])]
        for nodes, v in sorted(series.items())
    ]
    publish(
        "exp4_horizontal",
        render_table(
            "Exp-4 (repro): read Tpms vs storage nodes (horizontal "
            "scalability)",
            ["nodes", "TaaV Tpms", "BaaV Tpms"],
            rows,
        ),
    )
    # near-linear growth for both layouts: Zidian retains horizontal
    # scalability of the underlying KV store
    assert series[12][0] > series[4][0] * 2
    assert series[12][1] > series[4][1] * 2
