"""Figure 4 — parallel scalability and communication cost (Exp-3).

Panels a–d: vary the number of workers p (4..12) at a fixed scale; time
should fall with p for all systems (parallel scalability, Theorem 8) and
Zidian's communication stays far below the baselines'.

Panels e–h: vary the dataset scale at p = 8; all systems scale with |D|,
Zidian's communication for bounded queries stays flat.
"""


from harness import (
    baav_schema_for,
    build_pair,
    dataset,
    fmt,
    mean,
    publish,
    queries_for,
    render_table,
    run_queries,
)

WORKER_GRID = (4, 8, 12)
SCALE_GRID = (2, 4, 8, 16)
FIXED_SCALE = 8
FIXED_WORKERS = 8
BACKEND = "hbase"

TPCH_SUBSET = ("q3", "q6", "q11", "q13", "q17")


def queries_of(name, db):
    queries = queries_for(name, db)
    if name == "tpch":
        queries = [(l, s) for l, s in queries if l in TPCH_SUBSET]
    return queries


def run_vary_workers(name: str):
    """Each EC2 instance in the paper is both a computing *and* a storage
    node ("Each instance works as both a computing node and a storage
    node", §9 Configuration), so p scales both here."""
    db = dataset(name, FIXED_SCALE)
    baav = baav_schema_for(name)
    queries = queries_of(name, db)
    series = {}
    for workers in WORKER_GRID:
        base, zidian = build_pair(
            db, baav, BACKEND, workers=workers, storage_nodes=workers
        )
        runs = run_queries(base, zidian, queries)
        series[workers] = (
            mean(r.base.sim_time_ms for r in runs),
            mean(r.zidian.sim_time_ms for r in runs),
            mean(r.base.comm_bytes for r in runs),
            mean(r.zidian.comm_bytes for r in runs),
        )
    return series


def run_vary_scale(name: str):
    baav = baav_schema_for(name)
    series = {}
    for units in SCALE_GRID:
        db = dataset(name, units)
        queries = queries_of(name, db)
        base, zidian = build_pair(db, baav, BACKEND, workers=FIXED_WORKERS)
        runs = run_queries(base, zidian, queries)
        bounded = [r for r in runs if r.bounded]
        series[units] = (
            mean(r.base.sim_time_ms for r in runs),
            mean(r.zidian.sim_time_ms for r in runs),
            mean(r.base.comm_bytes for r in runs),
            mean(r.zidian.comm_bytes for r in runs),
            mean(r.zidian.comm_bytes for r in bounded) if bounded else 0.0,
        )
    return series


def publish_series(name, panel, title, series, x_label):
    rows = [
        [str(x), fmt(v[0] / 1000), fmt(v[1] / 1000),
         fmt(v[2] / 1e6), fmt(v[3] / 1e6)]
        for x, v in sorted(series.items())
    ]
    publish(
        f"fig4{panel}",
        render_table(
            f"Figure 4{panel} (repro): {title}",
            [x_label, "SoH t(s)", "SoHZ t(s)", "SoH comm(MB)",
             "SoHZ comm(MB)"],
            rows,
        ),
    )


class TestVaryWorkers:
    def test_fig4a_b_mot(self, once):
        series = once(run_vary_workers, "mot")
        publish_series("a_b", "a_b", "MOT: time & comm vs workers p",
                       series, "p")
        times_base = [series[p][0] for p in WORKER_GRID]
        times_z = [series[p][1] for p in WORKER_GRID]
        # parallel scalability: 4 -> 12 nodes gives a real speedup for
        # both systems (paper: ~2.5x for SoH, ~2.0x with Zidian)
        assert times_base[0] > times_base[-1] * 1.5
        assert times_z[0] > times_z[-1] * 1.2
        # Zidian communicates far less overall (scan-free queries drive
        # orders of magnitude; whole-table aggregates ship comparable
        # shuffle volumes, diluting the mean)
        for p in WORKER_GRID:
            assert series[p][3] < series[p][2] / 2

    def test_fig4c_d_tpch(self, once):
        series = once(run_vary_workers, "tpch")
        publish_series("c_d", "c_d", "TPC-H: time & comm vs workers p",
                       series, "p")
        assert series[4][0] > series[12][0] * 1.5
        assert series[4][1] >= series[12][1]
        for p in WORKER_GRID:
            assert series[p][3] < series[p][2]


class TestVaryScale:
    def test_fig4e_f_mot(self, once):
        series = once(run_vary_scale, "mot")
        publish_series("e_f", "e_f", "MOT: time & comm vs scale (p=8)",
                       series, "units")
        lo, hi = SCALE_GRID[0], SCALE_GRID[-1]
        # baselines grow with |D|
        assert series[hi][0] > series[lo][0] * 3
        # Zidian stays below everywhere
        for units in SCALE_GRID:
            assert series[units][1] < series[units][0]
        # bounded queries: flat communication as |D| grows (paper: ~0.33MB
        # at every size)
        assert series[hi][4] < series[lo][4] * 2 + 1024

    def test_fig4g_h_tpch(self, once):
        series = once(run_vary_scale, "tpch")
        publish_series("g_h", "g_h", "TPC-H: time & comm vs scale (p=8)",
                       series, "units")
        lo, hi = SCALE_GRID[0], SCALE_GRID[-1]
        assert series[hi][0] > series[lo][0] * 3
        for units in SCALE_GRID:
            assert series[units][1] < series[units][0]
            assert series[units][3] < series[units][2]
