"""Vectorized columnar execution (PR 10): compiled plans vs row-at-a-time.

Times the same KBA plans under ``ExecContext(vectorized=False)`` (per-row
``Expr.eval`` over dict environments) and ``vectorized=True``
(:mod:`repro.kba.compile`: once-compiled positional kernels over
:class:`~repro.baav.frame` columns). The execution-layer workloads run
scan-free plans over :class:`Constant` leaves — the blocks are already in
memory, as after a fetch — so the measurement isolates exactly the code
the vectorizer replaces. Fetch, decode and planning are byte-identical
across modes (same ``multi_get`` batches, same simulated cost), so the
end-to-end MOT workload reports a smaller, scan-diluted speedup alongside
proof that the storage counters and simulated cost do not move.
"""

import random
import time

from harness import dataset, fmt, metric, publish, publish_json, render_table

from repro.kba import (
    Constant,
    ExecContext,
    GroupK,
    JoinK,
    ProjectK,
    SelectK,
    execute,
)
from repro.relational import bag_equal
from repro.sql import ast
from repro.sql.algebra import AggSpec

SCALE_UNITS = 8
BACKEND = "hbase"
N_ROWS = 40_000
REPEATS = 5  # best-of-N wall clock per mode
ATTRS = ("t.id", "t.a", "t.b", "t.c", "t.d", "t.e", "t.f", "t.g")


def _rows(n: int, seed: int = 7):
    rng = random.Random(seed)
    return tuple(
        (i,) + tuple(rng.randrange(1000) for _ in range(len(ATTRS) - 1))
        for i in range(n)
    )


def _best_of(fn, repeats: int = REPEATS) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best * 1000.0


def _time_plan(plan):
    """(row_ms, vec_ms) for one plan, asserting identical results."""
    row_ctx = ExecContext(None, vectorized=False)
    vec_ctx = ExecContext(None, vectorized=True)
    row_out = execute(plan, row_ctx)
    vec_out = execute(plan, vec_ctx)
    assert row_out.attrs == vec_out.attrs
    assert row_out.data == vec_out.data
    return (
        _best_of(lambda: execute(plan, row_ctx)),
        _best_of(lambda: execute(plan, vec_ctx)),
    )


def _operator_workloads():
    """Scan-free plans: filter+project (fused), hash join, group-by."""
    rows = _rows(N_ROWS)
    leaf = Constant(ATTRS, rows)
    col = ast.Column
    lit = ast.Lit

    scan_filter = ProjectK(
        SelectK(
            leaf,
            ast.And([
                ast.Cmp(">", col("t.a"), lit(200)),
                ast.Cmp("<=", col("t.b"), lit(800)),
            ]),
        ),
        ("t.id", "t.a", "t.b"),
    )
    right = Constant(
        ("s.id", "s.x"),
        tuple((i * 2, i % 997) for i in range(N_ROWS // 4)),
    )
    join = JoinK(
        leaf,
        right,
        (("t.id", "s.id"),),
        residual=ast.Cmp("<", col("s.x"), lit(900)),
    )
    group = GroupK(
        leaf,
        ("t.c",),
        (
            AggSpec("n", "COUNT", None),
            AggSpec("total", "SUM", col("t.d")),
        ),
    )
    return [("scan_filter", scan_filter), ("join", join), ("group", group)]


def _end_to_end():
    """Full ZidianSystem query on MOT: scan-dominated, counters invariant."""
    from repro.baav import BaaVSchema, KVSchema
    from repro.systems import ZidianSystem
    from repro.workloads.mot import TEST

    db = dataset("mot", SCALE_UNITS)
    schema = BaaVSchema([
        KVSchema(
            "test_by_vehicle", TEST, ["vehicle_id"],
            ["test_type", "test_class", "result", "odometer",
             "co2", "fee", "duration_min", "station_id"],
        ),
    ])
    sql = (
        "select T.vehicle_id, T.odometer from TEST T "
        "where T.odometer > 40000 and T.result = 'P'"
    )
    out = {}
    for vectorized in (False, True):
        zidian = ZidianSystem(
            BACKEND, workers=8, storage_nodes=4,
            keep_taav=False, use_stats=False, vectorized=vectorized,
        )
        zidian.load(db, schema)
        result = zidian.execute(sql)  # warm (and result/counter capture)
        wall = _best_of(lambda: zidian.execute(sql), repeats=3)
        out[vectorized] = (wall, result)
    row_wall, row_res = out[False]
    vec_wall, vec_res = out[True]
    assert bag_equal(row_res.relation, vec_res.relation)
    # Cost accounting is mode-invariant: same fetches, same simulated cost.
    for field in ("n_get", "data_values", "comm_bytes", "sim_time_ms"):
        assert getattr(row_res.metrics, field) == getattr(vec_res.metrics, field)
    return row_wall, vec_wall, row_res.metrics.sim_time_ms


def test_vectorized_speedup(once):
    """Headline: >= 2x on the scan/filter execution workload."""

    def run():
        operator = {}
        for name, plan in _operator_workloads():
            operator[name] = _time_plan(plan)
        return operator, _end_to_end()

    operator, (e2e_row, e2e_vec, sim_ms) = once(run)

    rows = []
    metrics = []
    for name, (row_ms, vec_ms) in operator.items():
        speedup = row_ms / vec_ms
        rows.append([name, fmt(row_ms), fmt(vec_ms), fmt(speedup) + "x", "n/a"])
        metrics.append(metric(f"speedup_{name}", speedup, "x"))
    e2e_speedup = e2e_row / e2e_vec
    rows.append([
        "end_to_end (MOT)", fmt(e2e_row), fmt(e2e_vec),
        fmt(e2e_speedup) + "x", fmt(sim_ms),
    ])
    metrics.append(metric("speedup_end_to_end", e2e_speedup, "x"))
    metrics.append(metric("scan_filter_vec_ms", operator["scan_filter"][1],
                          "ms", higher_is_better=False))

    publish(
        "vectorized",
        render_table(
            "Vectorized execution (PR 10): row-at-a-time vs compiled plans",
            ["workload", "row (ms)", "vectorized (ms)", "speedup", "sim (ms)"],
            rows,
        ),
    )
    publish_json(
        "vectorized",
        metrics,
        config={
            "n_rows": N_ROWS,
            "repeats": REPEATS,
            "backend": BACKEND,
            "scale_units": SCALE_UNITS,
            "note": (
                "operator workloads are scan-free plans over in-memory "
                "blocks; end_to_end includes the mode-invariant fetch/"
                "decode path, hence the smaller ratio. Simulated cost and "
                "storage counters are asserted identical across modes."
            ),
        },
    )
    assert operator["scan_filter"][0] / operator["scan_filter"][1] >= 2.0
