"""Figures 6 & 7 (full version) — the AIRCA panels of Exp-2 / Exp-3.

The conference paper defers AIRCA's scan-impact and scalability plots to
its full version, noting they are "similar to the results on MOT". We
regenerate them the same way as Figures 3 and 4.
"""


from harness import (
    baav_schema_for,
    build_pair,
    dataset,
    fmt,
    mean,
    publish,
    queries_for,
    render_table,
    run_queries,
)

GRID = (1, 2, 4, 8)
WORKER_GRID = (4, 8, 12)
FIXED_SCALE = 8


def run_fig6_panel(scan_free: bool):
    baav = baav_schema_for("airca")
    series = {}
    for units in GRID:
        db = dataset("airca", units)
        base, zidian = build_pair(
            db, baav, "hbase", workers=1, storage_nodes=4
        )
        runs = run_queries(base, zidian, queries_for("airca", db))
        runs = [r for r in runs if r.scan_free == scan_free]
        series[units] = (
            mean(r.base.sim_time_ms for r in runs),
            mean(r.zidian.sim_time_ms for r in runs),
            all(r.bounded for r in runs) if runs else False,
        )
    return series


def test_fig6_airca_scan_free(once):
    series = once(run_fig6_panel, True)
    rows = [
        [str(u), fmt(b / 1000), fmt(z / 1000)]
        for u, (b, z, _) in sorted(series.items())
    ]
    publish(
        "fig6_airca_scan_free",
        render_table(
            "Figure 6 s.f. (repro): AIRCA scan-free (bounded) — 1 worker",
            ["scale units", "SoH time (s)", "SoHZidian time (s)"],
            rows,
        ),
    )
    # bounded: Zidian flat, baseline linear (like MOT / Fig 3a)
    assert all(bounded for _, _, bounded in series.values())
    lo, hi = GRID[0], GRID[-1]
    assert series[hi][0] > series[lo][0] * 3
    assert series[hi][1] < series[lo][1] * 1.8
    assert all(z < b for b, z, _ in series.values())


def test_fig6_airca_non_scan_free(once):
    series = once(run_fig6_panel, False)
    rows = [
        [str(u), fmt(b / 1000), fmt(z / 1000)]
        for u, (b, z, _) in sorted(series.items())
    ]
    publish(
        "fig6_airca_non_scan_free",
        render_table(
            "Figure 6 n.s.f. (repro): AIRCA non-scan-free — 1 worker",
            ["scale units", "SoH time (s)", "SoHZidian time (s)"],
            rows,
        ),
    )
    lo, hi = GRID[0], GRID[-1]
    assert series[hi][0] > series[lo][0] * 3
    assert all(z < b for b, z, _ in series.values())


def run_fig7():
    db = dataset("airca", FIXED_SCALE)
    baav = baav_schema_for("airca")
    queries = queries_for("airca", db)
    series = {}
    for workers in WORKER_GRID:
        base, zidian = build_pair(
            db, baav, "hbase", workers=workers, storage_nodes=workers
        )
        runs = run_queries(base, zidian, queries)
        series[workers] = (
            mean(r.base.sim_time_ms for r in runs),
            mean(r.zidian.sim_time_ms for r in runs),
            mean(r.base.comm_bytes for r in runs),
            mean(r.zidian.comm_bytes for r in runs),
        )
    return series


def test_fig7_airca_parallel(once):
    series = once(run_fig7)
    rows = [
        [str(p), fmt(v[0] / 1000), fmt(v[1] / 1000),
         fmt(v[2] / 1e6), fmt(v[3] / 1e6)]
        for p, v in sorted(series.items())
    ]
    publish(
        "fig7_airca_parallel",
        render_table(
            "Figure 7 (repro): AIRCA time & comm vs workers p",
            ["p", "SoH t(s)", "SoHZ t(s)", "SoH comm(MB)", "SoHZ comm(MB)"],
            rows,
        ),
    )
    assert series[4][0] > series[12][0] * 1.5
    assert series[4][1] >= series[12][1]
    for p in WORKER_GRID:
        assert series[p][3] < series[p][2] / 2
